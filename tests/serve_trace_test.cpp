// Request tracing through the service: X-Cirrus-Trace ids, the /spans ring
// (miss shows gate-wait + execute, hit does not), per-route counters and
// duration histograms, and the JSON-lines access log.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/jsonlite.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace {

using namespace cirrus;

class ServeTraceTest : public ::testing::Test {
 protected:
  void start(serve::Service::Options sopts = {}) {
    service_ = std::make_unique<serve::Service>(sopts);
    server_ = std::make_unique<serve::HttpServer>(
        serve::HttpServer::Options{}, [this](const serve::HttpRequest& req) {
          return service_->handle(req);
        });
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    ASSERT_TRUE(client_.connect(server_->port(), "127.0.0.1", &error)) << error;
  }

  void TearDown() override {
    client_.close();
    if (server_) server_->stop();
  }

  std::unique_ptr<serve::Service> service_;
  std::unique_ptr<serve::HttpServer> server_;
  serve::HttpClient client_;
};

constexpr const char* kQuery = "/query?workload=npb&bench=EP&class=S&np=4";

std::vector<std::string> span_names(const serve::RequestTrace& t) {
  std::vector<std::string> names;
  names.reserve(t.spans.size());
  for (const auto& s : t.spans) names.push_back(s.name);
  return names;
}

bool has_span(const serve::RequestTrace& t, const std::string& name) {
  for (const auto& s : t.spans)
    if (s.name == name) return true;
  return false;
}

TEST_F(ServeTraceTest, EveryResponseCarriesADistinctTraceId) {
  start();
  std::set<std::string> ids;
  for (const char* path : {"/healthz", kQuery, kQuery, "/metrics", "/nope"}) {
    const auto resp = client_.request("GET", path);
    ASSERT_TRUE(resp.has_value()) << path;
    const auto it = resp->headers.find("x-cirrus-trace");
    ASSERT_NE(it, resp->headers.end()) << path;
    EXPECT_EQ(it->second.size(), 16U) << path;  // %016llx
    EXPECT_EQ(it->second.find_first_not_of("0123456789abcdef"), std::string::npos) << path;
    ids.insert(it->second);
  }
  EXPECT_EQ(ids.size(), 5U);  // monotone sequence: all distinct
}

TEST_F(ServeTraceTest, MissShowsExecuteChainHitDoesNot) {
  start();
  const auto cold = client_.request("GET", kQuery);
  const auto warm = client_.request("GET", kQuery);
  ASSERT_TRUE(cold.has_value() && warm.has_value());
  EXPECT_EQ(cold->headers.at("x-cirrus-cache"), "miss");
  EXPECT_EQ(warm->headers.at("x-cirrus-cache"), "hit");

  const auto traces = service_->recent_traces();
  ASSERT_EQ(traces.size(), 2U);
  const auto& miss = traces[0];
  const auto& hit = traces[1];

  // Cold miss: the full parse -> cache -> gate-wait -> execute -> serialize
  // chain, in begin order.
  EXPECT_EQ(miss.cache, "miss");
  for (const char* name : {"parse", "cache", "gate-wait", "execute", "serialize"})
    EXPECT_TRUE(has_span(miss, name)) << name << " missing from " << miss.route;
  const auto names = span_names(miss);
  // execute comes after gate-wait, serialize last
  EXPECT_LT(std::find(names.begin(), names.end(), "gate-wait") - names.begin(),
            std::find(names.begin(), names.end(), "execute") - names.begin());
  for (const auto& s : miss.spans) EXPECT_LE(s.begin_us, s.end_us) << s.name;

  // Warm hit: served from the blob — no compute slot, no execute span.
  EXPECT_EQ(hit.cache, "hit");
  EXPECT_TRUE(has_span(hit, "cache"));
  EXPECT_FALSE(has_span(hit, "execute"));
  EXPECT_FALSE(has_span(hit, "gate-wait"));
}

TEST_F(ServeTraceTest, SpansEndpointIsStrictJson) {
  start();
  (void)client_.request("GET", kQuery);
  (void)client_.request("GET", kQuery);
  const auto resp = client_.request("GET", "/spans");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);

  obs::jsonlite::Value doc;
  std::string error;
  ASSERT_TRUE(obs::jsonlite::parse(resp->body, doc, &error)) << error;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->str, "cirrus-serve-spans/1");
  const auto* requests = doc.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_EQ(requests->array.size(), 2U);  // /spans itself is recorded *after*
  const auto& first = requests->array[0];
  EXPECT_EQ(first.find("route")->str, "query");
  EXPECT_EQ(first.find("cache")->str, "miss");
  EXPECT_EQ(first.find("status")->number, 200);
  const auto* spans = first.find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_GE(spans->array.size(), 4U);
  for (const auto& s : spans->array) {
    ASSERT_NE(s.find("name"), nullptr);
    EXPECT_LE(s.find("begin_us")->number, s.find("end_us")->number);
  }
}

TEST_F(ServeTraceTest, SpansRingIsBounded) {
  serve::Service::Options sopts;
  sopts.spans_capacity = 3;
  start(sopts);
  for (int i = 0; i < 6; ++i) (void)client_.request("GET", "/healthz");
  const auto traces = service_->recent_traces();
  EXPECT_EQ(traces.size(), 3U);
  for (const auto& t : traces) EXPECT_EQ(t.route, "healthz");
}

TEST_F(ServeTraceTest, PerRouteCountersAndDurationHistograms) {
  start();
  (void)client_.request("GET", "/healthz");
  (void)client_.request("GET", "/healthz");
  (void)client_.request("GET", "/cache/stats");
  (void)client_.request("GET", kQuery);
  (void)client_.request("GET", "/spans");
  (void)client_.request("GET", "/nope");
  const auto resp = client_.request("GET", "/metrics");
  ASSERT_TRUE(resp.has_value());
  const std::string& body = resp->body;

  // The observability routes are first-class, not lumped under "other".
  EXPECT_NE(body.find("serve_requests_total{route=\"healthz\"} 2"), std::string::npos);
  EXPECT_NE(body.find("serve_requests_total{route=\"cache_stats\"} 1"), std::string::npos);
  EXPECT_NE(body.find("serve_requests_total{route=\"query\"} 1"), std::string::npos);
  EXPECT_NE(body.find("serve_requests_total{route=\"spans\"} 1"), std::string::npos);
  EXPECT_NE(body.find("serve_requests_total{route=\"other\"} 1"), std::string::npos);
  // log2 duration histogram per route (Prometheus histogram triple).
  for (const char* route : {"query", "healthz", "cache_stats", "spans", "other"}) {
    const std::string count =
        std::string("serve_request_duration_seconds_count{route=\"") + route + "\"}";
    EXPECT_NE(body.find(count), std::string::npos) << route;
  }
  EXPECT_NE(body.find("serve_request_duration_seconds_bucket{"), std::string::npos);
  EXPECT_NE(body.find("serve_request_duration_seconds_sum{"), std::string::npos);
}

TEST_F(ServeTraceTest, AccessLogIsJsonLines) {
  const std::string path =
      ::testing::TempDir() + "/cirrus_access_log_" + std::to_string(::getpid()) + ".jsonl";
  serve::Service::Options sopts;
  sopts.access_log_path = path;
  start(sopts);
  (void)client_.request("GET", kQuery);
  (void)client_.request("GET", kQuery);
  (void)client_.request("GET", "/healthz");
  (void)client_.request("GET", "/nope");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4U);

  const std::vector<std::pair<std::string, std::string>> expect = {
      {"query", "miss"}, {"query", "hit"}, {"healthz", "-"}, {"other", "-"}};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    obs::jsonlite::Value doc;
    std::string error;
    ASSERT_TRUE(obs::jsonlite::parse(lines[i], doc, &error)) << error << "\n" << lines[i];
    ASSERT_NE(doc.find("trace"), nullptr) << lines[i];
    EXPECT_EQ(doc.find("trace")->str.size(), 16U);
    EXPECT_EQ(doc.find("route")->str, expect[i].first) << lines[i];
    EXPECT_EQ(doc.find("cache")->str, expect[i].second) << lines[i];
    ASSERT_NE(doc.find("status"), nullptr);
    ASSERT_NE(doc.find("latency_us"), nullptr);
    EXPECT_GE(doc.find("latency_us")->number, 0);
  }
  EXPECT_EQ(std::remove(path.c_str()), 0);
}

TEST(ServeTraceOptions, BadAccessLogPathThrows) {
  serve::Service::Options sopts;
  sopts.access_log_path = "/nonexistent-dir/access.jsonl";
  EXPECT_THROW(serve::Service service(sopts), std::runtime_error);
}

}  // namespace
