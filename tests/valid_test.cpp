// Tests for the paper-fidelity validation subsystem: tolerance boundaries,
// reference-file parsing (including error positions), quantitative and
// qualitative checks, reference round-trips and the golden JSON manifest.
#include "valid/compare.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "core/report_bridge.hpp"
#include "core/table.hpp"
#include "valid/manifest.hpp"
#include "valid/paths.hpp"
#include "valid/report.hpp"

namespace {

using namespace cirrus;
using valid::CheckStatus;

TEST(Tolerance, BoundaryIsInclusive) {
  const valid::Tolerance tol{.rel = 0.05, .abs = 0.0};
  EXPECT_TRUE(tol.within(100.0, 105.0));   // exactly at the 5% boundary
  EXPECT_TRUE(tol.within(100.0, 95.0));
  EXPECT_FALSE(tol.within(100.0, 105.01));
  EXPECT_FALSE(tol.within(100.0, 94.99));
}

TEST(Tolerance, AbsoluteFloorWinsNearZero) {
  // rel * |expected| is tiny, so the abs term is the active limit.
  const valid::Tolerance tol{.rel = 0.05, .abs = 0.5};
  EXPECT_TRUE(tol.within(0.0, 0.5));
  EXPECT_FALSE(tol.within(0.0, 0.51));
  EXPECT_TRUE(tol.within(1.0, 1.5));  // max(0.5, 0.05) = 0.5
}

TEST(Tolerance, NegativeExpectedUsesMagnitude) {
  const valid::Tolerance tol{.rel = 0.10, .abs = 0.0};
  EXPECT_TRUE(tol.within(-100.0, -91.0));
  EXPECT_FALSE(tol.within(-100.0, -111.0));
}

TEST(Slug, LowercasesAndCollapsesSeparators) {
  EXPECT_EQ(valid::slug("EC2-4"), "ec2-4");
  EXPECT_EQ(valid::slug("fattree 2:1 / scatter"), "fattree_2_1_scatter");
  EXPECT_EQ(valid::slug("  Vayu  "), "vayu");
  EXPECT_EQ(valid::slug("no NUMA masking"), "no_numa_masking");
  EXPECT_EQ(valid::slug("a.b+c-d"), "a.b+c-d");
}

TEST(RunReport, AddAndFind) {
  valid::RunReport r;
  r.add("bw", "vayu", 2, 3200.0, "MB/s").add("bw", "dcc", 2, 190.0, "MB/s");
  ASSERT_NE(r.find("bw", "vayu", 2), nullptr);
  EXPECT_DOUBLE_EQ(r.find("bw", "vayu", 2)->value, 3200.0);
  EXPECT_EQ(r.find("bw", "vayu", 4), nullptr);
  EXPECT_EQ(r.find("lat", "vayu", 2), nullptr);
}

// ---------------------------------------------------------------------------
// Reference grammar

TEST(ReferenceParse, AcceptsAllDirectivesAndComments) {
  const auto ref = valid::ReferenceSet::parse_string(
      "# comment\n"
      "metric fig1 peak_bw vayu 2 3200 0.05 1e-6  # trailing comment\n"
      "\n"
      "expect fig4 speedup_CG ec2 16 lt 4.0\n"
      "order fig1 peak_bw 2 vayu ec2 dcc\n");
  ASSERT_EQ(ref.metrics.size(), 1u);
  EXPECT_EQ(ref.metrics[0].target, "fig1");
  EXPECT_EQ(ref.metrics[0].platform, "vayu");
  EXPECT_EQ(ref.metrics[0].ranks, 2);
  EXPECT_DOUBLE_EQ(ref.metrics[0].value, 3200.0);
  EXPECT_DOUBLE_EQ(ref.metrics[0].tol.rel, 0.05);
  ASSERT_EQ(ref.bounds.size(), 1u);
  EXPECT_EQ(ref.bounds[0].op, valid::BoundOp::Lt);
  ASSERT_EQ(ref.orders.size(), 1u);
  EXPECT_EQ(ref.orders[0].platforms,
            (std::vector<std::string>{"vayu", "ec2", "dcc"}));
}

TEST(ReferenceParse, ErrorsCarryOriginAndLine) {
  try {
    valid::ReferenceSet::parse_string("metric fig1 bw vayu 2 100 0.05\n", "x.ref");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("x.ref:1"), std::string::npos) << e.what();
  }
  // Line numbers advance past blank/comment lines.
  try {
    valid::ReferenceSet::parse_string("# fine\n\nbogus fig1 bw vayu 2 1 0 0\n", "y.ref");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("y.ref:3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos) << e.what();
  }
}

TEST(ReferenceParse, RejectsMalformedFields) {
  EXPECT_THROW(valid::ReferenceSet::parse_string("metric f m p two 1 0.05 0\n"),
               std::runtime_error);  // non-numeric ranks
  EXPECT_THROW(valid::ReferenceSet::parse_string("metric f m p 2 1 -0.05 0\n"),
               std::runtime_error);  // negative tolerance
  EXPECT_THROW(valid::ReferenceSet::parse_string("metric f m p 2 1.5x 0.05 0\n"),
               std::runtime_error);  // trailing junk in number
  EXPECT_THROW(valid::ReferenceSet::parse_string("expect f m p 2 between 1\n"),
               std::runtime_error);  // unknown bound op
  EXPECT_THROW(valid::ReferenceSet::parse_string("order f m 2 vayu\n"),
               std::runtime_error);  // order needs >= 2 platforms
}

// ---------------------------------------------------------------------------
// Checking reports against references

std::vector<valid::RunReport> sample_reports() {
  valid::RunReport fig1;
  fig1.target = "fig1";
  fig1.add("peak_bw", "vayu", 2, 3200.0, "MB/s")
      .add("peak_bw", "ec2", 2, 560.0, "MB/s")
      .add("peak_bw", "dcc", 2, 190.0, "MB/s");
  valid::RunReport fig4;
  fig4.target = "fig4";
  fig4.add("speedup_CG", "ec2", 16, 2.7);
  return {fig1, fig4};
}

TEST(Check, MetricPassFailAndMissing) {
  const auto ref = valid::ReferenceSet::parse_string(
      "metric fig1 peak_bw vayu 2 3200 0.05 0\n"    // pass (exact)
      "metric fig1 peak_bw dcc 2 250 0.05 0\n"      // fail (190 vs 250)
      "metric fig1 peak_bw azure 2 100 0.05 0\n");  // missing platform
  const auto results = valid::check(sample_reports(), ref);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, CheckStatus::Pass);
  EXPECT_EQ(results[1].status, CheckStatus::Fail);
  EXPECT_EQ(results[2].status, CheckStatus::Missing);
  EXPECT_EQ(valid::failures(results), 2);
}

TEST(Check, QualitativeBoundsAndOrdering) {
  const auto ref = valid::ReferenceSet::parse_string(
      // "EC2 CG efficiency collapses past 8 ranks": speedup well below ideal.
      "expect fig4 speedup_CG ec2 16 lt 4.0\n"
      "expect fig4 speedup_CG ec2 16 ge 2.7\n"  // boundary: ge is inclusive
      "expect fig4 speedup_CG ec2 16 gt 2.7\n"  // strict: fails at boundary
      // "Vayu > EC2 > DCC bandwidth ordering".
      "order fig1 peak_bw 2 vayu ec2 dcc\n"
      "order fig1 peak_bw 2 dcc ec2 vayu\n"     // wrong direction
      "order fig1 peak_bw 2 vayu ec2 azure\n"); // unknown platform
  const auto results = valid::check(sample_reports(), ref);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].status, CheckStatus::Pass);
  EXPECT_EQ(results[1].status, CheckStatus::Pass);
  EXPECT_EQ(results[2].status, CheckStatus::Fail);
  EXPECT_EQ(results[3].status, CheckStatus::Pass);
  EXPECT_EQ(results[4].status, CheckStatus::Fail);
  EXPECT_EQ(results[5].status, CheckStatus::Missing);
}

TEST(Check, RenderFailuresOnlyFiltersPasses) {
  const auto ref = valid::ReferenceSet::parse_string(
      "metric fig1 peak_bw vayu 2 3200 0.05 0\n"
      "metric fig1 peak_bw dcc 2 250 0.05 0\n");
  const auto results = valid::check(sample_reports(), ref);
  const std::string failures = valid::render_checks(results, /*failures_only=*/true);
  EXPECT_EQ(failures.find("vayu"), std::string::npos);
  EXPECT_NE(failures.find("dcc"), std::string::npos);
  const std::string all = valid::render_checks(results, /*failures_only=*/false);
  EXPECT_NE(all.find("vayu"), std::string::npos);
}

TEST(Check, WriteReferenceRoundTripsAndCatchesPerturbation) {
  auto reports = sample_reports();
  const std::string text = valid::write_reference(reports, 0.05, 1e-6);
  const auto ref = valid::ReferenceSet::parse_string(text, "generated.ref");
  ASSERT_EQ(ref.metrics.size(), 4u);
  EXPECT_EQ(valid::failures(valid::check(reports, ref)), 0);

  // A perturbation beyond tolerance must trip the gate.
  reports[0].metrics[0].value *= 1.06;
  EXPECT_GT(valid::failures(valid::check(reports, ref)), 0);
  // ... and one within tolerance must not.
  reports[0].metrics[0].value = 3200.0 * 1.04;
  EXPECT_EQ(valid::failures(valid::check(reports, ref)), 0);
}

// ---------------------------------------------------------------------------
// Bridge from core::Figure

TEST(ReportBridge, FigureSeriesBecomeMetrics) {
  core::Figure fig;
  fig.id = "fig5";
  fig.series = {{"vayu total", {{1, 1.0}, {8, 6.5}}},
                {"vayu KSp", {{8, 5.0}}},
                {"DCC (GigE)", {{8, 2.0}}}};
  valid::RunReport out;
  core::figure_to_report(fig, "speedup", "", out);
  ASSERT_EQ(out.metrics.size(), 4u);
  ASSERT_NE(out.find("speedup_total", "vayu", 8), nullptr);
  EXPECT_DOUBLE_EQ(out.find("speedup_total", "vayu", 8)->value, 6.5);
  EXPECT_NE(out.find("speedup_KSp", "vayu", 8), nullptr);
  // Parenthesised annotations are dropped, platform is slugged.
  EXPECT_NE(out.find("speedup", "dcc", 8), nullptr);
}

// ---------------------------------------------------------------------------
// Paths and reference discovery

TEST(Paths, EnvironmentOverridesWin) {
  ::setenv("CIRRUS_SOURCE_ROOT", "/tmp/elsewhere", 1);
  EXPECT_EQ(valid::source_root(), "/tmp/elsewhere");
  EXPECT_EQ(valid::reference_dir(), "/tmp/elsewhere/src/valid/reference");
  EXPECT_EQ(valid::test_data_dir(), "/tmp/elsewhere/tests/data");
  ::setenv("CIRRUS_REFERENCE_DIR", "/tmp/refs", 1);
  EXPECT_EQ(valid::reference_dir(), "/tmp/refs");
  ::unsetenv("CIRRUS_SOURCE_ROOT");
  ::unsetenv("CIRRUS_REFERENCE_DIR");
}

TEST(Paths, DefaultRootIsTheSourceTree) {
  // The compile definition points at the configure-time source dir, so data
  // lookups are CWD-independent: this test passes no matter where ctest runs.
  EXPECT_NE(valid::source_root(), "");
  EXPECT_NE(valid::source_root(), ".");
}

TEST(ReferenceLoad, LoadDefaultMergesAllRefFiles) {
  const auto ref = valid::ReferenceSet::load_default();
  EXPECT_GT(ref.size(), 0u);
  // The committed set includes both quantitative pins and the hand-curated
  // qualitative shape checks.
  EXPECT_GT(ref.metrics.size(), 0u);
  EXPECT_GT(ref.bounds.size() + ref.orders.size(), 0u);
}

TEST(ReferenceLoad, MissingDirectoryThrows) {
  ::setenv("CIRRUS_REFERENCE_DIR", "/nonexistent/refs", 1);
  EXPECT_THROW(valid::ReferenceSet::load_default(), std::runtime_error);
  ::unsetenv("CIRRUS_REFERENCE_DIR");
  EXPECT_THROW(valid::ReferenceSet::load("/nonexistent/file.ref"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Manifest

TEST(Manifest, GitShaEnvOverrideWins) {
  ::setenv("CIRRUS_GIT_SHA", "deadbeef1234", 1);
  EXPECT_EQ(valid::build_git_sha(), "deadbeef1234");
  ::unsetenv("CIRRUS_GIT_SHA");
  EXPECT_NE(valid::build_git_sha(), "");
}

valid::ManifestContext golden_context() {
  valid::ManifestContext ctx;
  ctx.suite = "paper";
  ctx.git_sha = "0123456789ab";  // pinned: goldens must not depend on HEAD
  ctx.seed = 1;
  ctx.jobs = 4;
  ctx.include_platforms = false;  // keep the golden platform-spec independent
  ctx.include_nondeterministic = false;  // golden must be byte-stable across hosts
  return ctx;
}

TEST(Manifest, GoldenRoundTrip) {
  auto reports = sample_reports();
  reports[0].title = "OSU bandwidth";
  reports[0].host_ms = 125.5;
  reports[0].events = 42000;
  reports[0].telemetry = {{"sim_events_total", 42000}, {"mpi_sends_eager", 512}};
  reports[1].title = "NPB speedup";
  reports[1].host_ms = 74.25;
  const auto ref = valid::ReferenceSet::parse_string(
      "metric fig1 peak_bw vayu 2 3200 0.05 0\n"
      "metric fig1 peak_bw dcc 2 250 0.05 0\n"
      "order fig1 peak_bw 2 vayu ec2 azure\n");
  const std::string json =
      valid::manifest_json(golden_context(), reports, valid::check(reports, ref));

  const std::string path = valid::test_data_dir() + "/manifest_golden.json";
  if (std::getenv("CIRRUS_UPDATE_GOLDEN") != nullptr) {
    valid::write_text_file(path, json);
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  EXPECT_EQ(json, valid::read_text_file(path))
      << "manifest schema changed; rerun with CIRRUS_UPDATE_GOLDEN=1 to regenerate";
}

TEST(Manifest, HostSectionIsGatedByNondeterministicFlag) {
  auto reports = sample_reports();
  reports[0].host_ms = 125.5;
  reports[0].events = 42000;
  auto ctx = golden_context();

  // Golden mode: no wall-clock fields anywhere in the output.
  std::string json = valid::manifest_json(ctx, reports, {});
  EXPECT_EQ(json.find("\"host\""), std::string::npos);
  EXPECT_EQ(json.find("host_ms"), std::string::npos);
  EXPECT_EQ(json.find("events_per_sec"), std::string::npos);
  // Deterministic event counts stay in the main section.
  EXPECT_NE(json.find("\"total_events\": 42000"), std::string::npos);

  ctx.include_nondeterministic = true;
  json = valid::manifest_json(ctx, reports, {});
  EXPECT_NE(json.find("\"host\""), std::string::npos);
  EXPECT_NE(json.find("\"host_ms\": 125.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_host_ms\": 125.5"), std::string::npos);
  EXPECT_NE(json.find("events_per_sec"), std::string::npos);
}

TEST(Manifest, TelemetryBlockIsDeterministicSection) {
  auto reports = sample_reports();
  reports[0].telemetry = {{"sim_events_total", 7}, {"net_bytes_internode", 4096}};
  const std::string json = valid::manifest_json(golden_context(), reports, {});
  EXPECT_NE(json.find("\"telemetry\": ["), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"sim_events_total\", \"value\": 7}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"net_bytes_internode\", \"value\": 4096}"),
            std::string::npos);
  // Reports without telemetry omit the block entirely.
  EXPECT_EQ(json.find("\"telemetry\": []"), std::string::npos);
}

TEST(Manifest, EmbedsPerfJsonAndCountsChecks) {
  auto ctx = golden_context();
  ctx.perf_json = "{\"benchmarks\": []}";
  const auto reports = sample_reports();
  const auto ref = valid::ReferenceSet::parse_string(
      "metric fig1 peak_bw vayu 2 3200 0.05 0\n"
      "metric fig1 peak_bw dcc 2 250 0.05 0\n"
      "metric fig1 peak_bw azure 2 100 0.05 0\n");
  const std::string json = valid::manifest_json(ctx, reports, valid::check(reports, ref));
  EXPECT_NE(json.find("\"perf_simulator\": {\"benchmarks\": []}"), std::string::npos);
  EXPECT_NE(json.find("\"passed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"missing\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"fail\""), std::string::npos);
}

}  // namespace
