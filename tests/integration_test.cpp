// Cross-cutting integration and property tests: whole-stack determinism,
// protocol-threshold invariance, platform monotonicity, and failure paths.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/chaste/chaste.hpp"
#include "apps/metum/metum.hpp"
#include "npb/npb.hpp"
#include "osu/osu.hpp"

namespace mpi = cirrus::mpi;
namespace npb = cirrus::npb;
namespace plat = cirrus::plat;

// ------------------------------------------------------------ determinism
TEST(Determinism, FullNpbJobBitIdenticalAcrossRuns) {
  const auto a = npb::run_benchmark("MG", npb::Class::S, plat::dcc(), 8, true, 7);
  const auto b = npb::run_benchmark("MG", npb::Class::S, plat::dcc(), 8, true, 7);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);  // bit-identical, no tolerance
  EXPECT_EQ(a.values.at("mg_rnorm"), b.values.at("mg_rnorm"));
}

TEST(Determinism, SeedChangesTimingNotResults) {
  const auto a = npb::run_benchmark("CG", npb::Class::S, plat::dcc(), 4, true, 7);
  const auto b = npb::run_benchmark("CG", npb::Class::S, plat::dcc(), 4, true, 8);
  EXPECT_NE(a.elapsed_seconds, b.elapsed_seconds);  // different jitter draws
  EXPECT_EQ(a.values.at("cg_zeta"), b.values.at("cg_zeta"));  // same math
}

TEST(Determinism, MetumModelModeBitIdentical) {
  auto run_once = [] {
    mpi::JobConfig c;
    c.platform = plat::ec2();
    c.np = 16;
    c.traits = cirrus::metum::traits();
    c.execute = false;
    c.seed = 99;
    c.name = "det";
    return mpi::run_job(c, [](mpi::RankEnv& env) { cirrus::metum::run(env); });
  };
  EXPECT_EQ(run_once().elapsed_seconds, run_once().elapsed_seconds);
}

// --------------------------------------------------- protocol invariance
TEST(ProtocolInvariance, EagerThresholdDoesNotChangeResults) {
  // Forcing everything through rendezvous (threshold 0) or everything eager
  // (huge threshold) must not change computed values — only timing.
  auto zeta_with = [](std::size_t threshold) {
    mpi::JobConfig c;
    c.platform = plat::vayu();
    c.np = 4;
    c.eager_threshold_bytes = threshold;
    c.execute = true;
    c.name = "thresh";
    double zeta = 0;
    auto r = mpi::run_job(c, [](mpi::RankEnv& env) { npb::run_cg(env, npb::Class::S); });
    (void)zeta;
    return r.values.at("cg_zeta");
  };
  const double z0 = zeta_with(0);
  const double z64k = zeta_with(64 * 1024);
  const double zbig = zeta_with(1u << 30);
  EXPECT_NEAR(z0, 8.5971775078648, 1e-10);  // the published NPB constant
  EXPECT_DOUBLE_EQ(z0, z64k);               // protocol changes: bit-identical
  EXPECT_DOUBLE_EQ(z0, zbig);
}

TEST(ProtocolInvariance, EagerThresholdChangesOnlyTiming) {
  auto time_with = [](std::size_t threshold) {
    mpi::JobConfig c;
    c.platform = plat::dcc();
    c.np = 16;
    c.eager_threshold_bytes = threshold;
    c.execute = false;
    c.name = "thresh";
    return mpi::run_job(c, [](mpi::RankEnv& env) {
             auto& comm = env.world();
             for (int i = 0; i < 10; ++i) {
               const int other = (env.rank() + 8) % 16;
               comm.sendrecv_bytes(other, i, nullptr, 64 << 10, other, i, nullptr, 64 << 10);
             }
           }).elapsed_seconds;
  };
  // Rendezvous adds an RTS/CTS round trip per message: all-rendezvous must
  // be measurably slower than all-eager on a high-latency network.
  EXPECT_GT(time_with(0), time_with(1u << 20));
}

// ----------------------------------------------------- platform ordering
TEST(PlatformOrdering, EveryNpbBenchmarkFastestOnVayu) {
  for (const auto& b : npb::all_benchmarks()) {
    const int np = b.name == "BT" || b.name == "SP" ? 16 : 16;
    const double vayu =
        npb::run_benchmark(b.name, npb::Class::A, plat::vayu(), np, false).elapsed_seconds;
    const double dcc =
        npb::run_benchmark(b.name, npb::Class::A, plat::dcc(), np, false).elapsed_seconds;
    const double ec2 =
        npb::run_benchmark(b.name, npb::Class::A, plat::ec2(), np, false).elapsed_seconds;
    EXPECT_LT(vayu, dcc) << b.name;
    EXPECT_LT(vayu, ec2) << b.name;
  }
}

TEST(PlatformOrdering, CommBoundGapGrowsWithScale) {
  // The virtualised platforms fall further behind as rank counts grow —
  // the paper's central observation.
  auto ratio_at = [](int np) {
    const double vayu =
        npb::run_benchmark("CG", npb::Class::B, plat::vayu(), np, false).elapsed_seconds;
    const double dcc =
        npb::run_benchmark("CG", npb::Class::B, plat::dcc(), np, false).elapsed_seconds;
    return dcc / vayu;
  };
  EXPECT_GT(ratio_at(32), 2.0 * ratio_at(2));
}

// ------------------------------------------------------------- failures
TEST(Failures, MismatchedCollectiveDeadlocks) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = 4;
  c.name = "mismatch";
  EXPECT_THROW(mpi::run_job(c,
                            [](mpi::RankEnv& env) {
                              if (env.rank() == 0) {
                                env.world().barrier();  // others never join
                              }
                            }),
               cirrus::sim::DeadlockError);
}

TEST(Failures, ExceptionInOneRankPropagates) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = 8;
  c.name = "throw";
  EXPECT_THROW(mpi::run_job(c,
                            [](mpi::RankEnv& env) {
                              env.compute(0.001);
                              if (env.rank() == 3) throw std::runtime_error("rank 3 died");
                              env.world().barrier();
                            }),
               std::runtime_error);
}

TEST(Failures, JobLargerThanPlatformRejected) {
  mpi::JobConfig c;
  c.platform = plat::ec2();  // 4 x 16 = 64 slots
  c.np = 65;
  c.name = "toolarge";
  EXPECT_THROW(mpi::run_job(c, [](mpi::RankEnv&) {}), std::invalid_argument);
}

// ------------------------------------------------- model/execute parity
TEST(ModeParity, ChasteModelAndExecuteShareSectionInventory) {
  auto sections_of = [](bool execute) {
    mpi::JobConfig c;
    c.platform = plat::vayu();
    c.np = 4;
    c.execute = execute;
    c.traits = cirrus::chaste::traits();
    c.name = "parity";
    auto r = mpi::run_job(c, [](mpi::RankEnv& env) { cirrus::chaste::run(env); });
    return r.ipm.section_names();
  };
  const auto exec_sections = sections_of(true);
  const auto model_sections = sections_of(false);
  // Every execute-mode section must exist in the model-mode profile (model
  // mode adds Assembly/Output detail).
  for (const auto& name : {"InputMesh", "Ode", "KSp"}) {
    EXPECT_NE(std::find(exec_sections.begin(), exec_sections.end(), name), exec_sections.end());
    EXPECT_NE(std::find(model_sections.begin(), model_sections.end(), name),
              model_sections.end());
  }
}

TEST(ModeParity, OsuResultsUnaffectedByExecuteFlag) {
  // OSU moves no payload data, so both modes must time identically.
  const auto a = cirrus::osu::latency(plat::vayu(), {1024}, 3);
  const auto b = cirrus::osu::latency(plat::vayu(), {1024}, 3);
  EXPECT_DOUBLE_EQ(a[0].usec, b[0].usec);
}
