// Trace JSON validity: every Chrome/Perfetto artifact the simulator writes
// must parse under the strict jsonlite grammar (what Perfetto and
// `python3 -m json.tool` accept), flow events must come in matched s/f pairs,
// counter tracks must carry sampled values, and the serialised form is pinned
// by a golden fixture.
#include "ipm/trace.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mpi/minimpi.hpp"
#include "obs/jsonlite.hpp"
#include "obs/sampler.hpp"
#include "obs/trace_export.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "valid/manifest.hpp"
#include "valid/paths.hpp"

namespace {

using namespace cirrus;
using obs::jsonlite::Value;

/// A small fixed trace exercising every event family.
ipm::Trace fixture_trace() {
  ipm::Trace t;
  t.add({.rank = 0,
         .begin = sim::from_micros(0),
         .end = sim::from_micros(500),
         .kind = ipm::TraceEvent::Kind::Compute});
  t.add({.rank = 1,
         .begin = sim::from_micros(100),
         .end = sim::from_micros(400),
         .kind = ipm::TraceEvent::Kind::Mpi,
         .call = ipm::CallKind::Recv,
         .bytes = 4096,
         .peer = 0});
  t.add_flow({.src_rank = 0,
              .dst_rank = 1,
              .send_time = sim::from_micros(120),
              .recv_time = sim::from_micros(380),
              .bytes = 4096});
  t.add_instant({.rank = -1, .t = sim::from_micros(250), .name = "checkpoint commit"});
  t.add_instant({.rank = 1, .t = sim::from_micros(300), .name = "marker \"quoted\""});
  return t;
}

obs::Sampler fixture_sampler() {
  sim::Engine engine;
  obs::Sampler s;
  double v = 1;
  s.add_channel("queue_depth", [&v] { return v; });
  engine.schedule_after(sim::from_micros(150), [&v] { v = 3.5; });
  bool alive = true;
  engine.schedule_after(sim::from_micros(450), [&alive] { alive = false; });
  s.install(engine, sim::from_micros(200), [&alive] { return alive; });
  engine.run();
  return s;
}

std::vector<const Value*> events_of_phase(const Value& doc, const std::string& ph) {
  std::vector<const Value*> out;
  for (const auto& ev : doc.array) {
    if (const Value* p = ev.find("ph"); p != nullptr && p->str == ph) out.push_back(&ev);
  }
  return out;
}

TEST(TraceJson, ChromeJsonIsStrictlyValid) {
  const std::string json = fixture_trace().to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.substr(json.size() - 2), "]\n");
  std::string error;
  EXPECT_TRUE(obs::jsonlite::validate(json, &error)) << error;
}

TEST(TraceJson, FlowEventsArePairedById) {
  const std::string json = fixture_trace().to_chrome_json();
  Value doc;
  std::string error;
  ASSERT_TRUE(obs::jsonlite::parse(json, doc, &error)) << error;
  ASSERT_TRUE(doc.is(Value::Type::Array));
  const auto starts = events_of_phase(doc, "s");
  const auto finishes = events_of_phase(doc, "f");
  ASSERT_EQ(starts.size(), 1U);
  ASSERT_EQ(finishes.size(), 1U);
  EXPECT_EQ(starts[0]->find("id")->number, finishes[0]->find("id")->number);
  EXPECT_EQ(starts[0]->find("cat")->str, "msg");
  EXPECT_EQ(finishes[0]->find("bp")->str, "e");
  EXPECT_EQ(starts[0]->find("tid")->number, 0);  // sender's row
  EXPECT_EQ(finishes[0]->find("tid")->number, 1);
  EXPECT_LT(starts[0]->find("ts")->number, finishes[0]->find("ts")->number);
}

TEST(TraceJson, InstantAndMetadataRows) {
  const std::string json = fixture_trace().to_chrome_json();
  Value doc;
  ASSERT_TRUE(obs::jsonlite::parse(json, doc));
  const auto instants = events_of_phase(doc, "i");
  ASSERT_EQ(instants.size(), 2U);
  EXPECT_EQ(instants[0]->find("s")->str, "g");  // global marker
  EXPECT_EQ(instants[1]->find("s")->str, "t");  // rank-scoped
  EXPECT_EQ(instants[1]->find("name")->str, "marker \"quoted\"");
  // One thread_name metadata row per rank present in the trace.
  EXPECT_EQ(events_of_phase(doc, "M").size(), 2U);
}

TEST(TraceJson, EnrichedJsonAddsCounterTracks) {
  const ipm::Trace trace = fixture_trace();
  const obs::Sampler sampler = fixture_sampler();
  const std::string json = obs::enriched_chrome_json(&trace, &sampler);
  std::string error;
  Value doc;
  ASSERT_TRUE(obs::jsonlite::parse(json, doc, &error)) << error;
  const auto counters = events_of_phase(doc, "C");
  ASSERT_EQ(counters.size(), sampler.rows().size());
  EXPECT_EQ(counters[0]->find("name")->str, "queue_depth");
  EXPECT_DOUBLE_EQ(counters[0]->find("args")->find("value")->number, 1.0);
  EXPECT_DOUBLE_EQ(counters.back()->find("args")->find("value")->number, 3.5);
  // Null inputs degrade to an empty (but valid) array.
  EXPECT_EQ(obs::enriched_chrome_json(nullptr, nullptr), "[]\n");
}

TEST(TraceJson, GoldenFixtureRoundTrip) {
  const ipm::Trace trace = fixture_trace();
  const obs::Sampler sampler = fixture_sampler();
  const std::string json = obs::enriched_chrome_json(&trace, &sampler);

  const std::string path = valid::test_data_dir() + "/trace_golden.json";
  if (std::getenv("CIRRUS_UPDATE_GOLDEN") != nullptr) {
    valid::write_text_file(path, json);
    GTEST_SKIP() << "golden regenerated at " << path;
  }
  EXPECT_EQ(json, valid::read_text_file(path))
      << "trace JSON schema changed; rerun with CIRRUS_UPDATE_GOLDEN=1 to regenerate";
}

TEST(TraceJson, ForRankIndexSurvivesMutation) {
  ipm::Trace t;
  for (int i = 0; i < 6; ++i) {
    t.add({.rank = i % 2, .begin = sim::from_micros(i), .end = sim::from_micros(i + 1)});
  }
  EXPECT_EQ(t.for_rank(0).size(), 3U);
  EXPECT_EQ(t.for_rank(1).size(), 3U);
  EXPECT_TRUE(t.for_rank(7).empty());
  EXPECT_TRUE(t.for_rank(-1).empty());
  // Mutating after a query invalidates and rebuilds the index.
  t.add({.rank = 1, .begin = sim::from_micros(10), .end = sim::from_micros(11)});
  const auto r1 = t.for_rank(1);
  ASSERT_EQ(r1.size(), 4U);
  EXPECT_EQ(r1.back().begin, sim::from_micros(10));
}

TEST(TraceJson, RealJobTraceParsesAndCarriesFlows) {
  mpi::JobConfig cfg;
  cfg.platform = plat::by_name("ec2");
  cfg.np = 4;
  cfg.enable_trace = true;
  cfg.telemetry.enabled = true;
  cfg.telemetry.sample_dt_s = 0.005;
  const auto r = mpi::run_job(cfg, [](mpi::RankEnv& env) {
    auto& comm = env.world();
    std::vector<double> buf(2048, env.rank());
    env.compute(0.01);
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() - 1 + comm.size()) % comm.size();
    comm.sendrecv(right, 0, buf.data(), buf.size(), left, 0, buf.data(), buf.size());
  });
  ASSERT_NE(r.trace, nullptr);
  ASSERT_NE(r.telemetry, nullptr);
  EXPECT_FALSE(r.trace->flows().empty()) << "matched sends must record flow events";

  const std::string json = obs::enriched_chrome_json(r.trace.get(), &r.telemetry->sampler);
  std::string error;
  Value doc;
  ASSERT_TRUE(obs::jsonlite::parse(json, doc, &error)) << error;
  EXPECT_FALSE(events_of_phase(doc, "s").empty());
  EXPECT_FALSE(events_of_phase(doc, "f").empty());
  EXPECT_FALSE(events_of_phase(doc, "C").empty());
  // The plain exporter stays valid too.
  EXPECT_TRUE(obs::jsonlite::validate(r.trace->to_chrome_json(), &error)) << error;
}

}  // namespace
