// Tests for the IPM-style profiler: section attribution, %comm, imbalance,
// histograms, and integration with minimpi jobs.
#include "ipm/ipm.hpp"

#include <gtest/gtest.h>

#include "ipm/trace.hpp"
#include "mpi/minimpi.hpp"

namespace ipm = cirrus::ipm;
namespace mpi = cirrus::mpi;
namespace plat = cirrus::plat;
namespace sim = cirrus::sim;

TEST(IpmRecorder, SectionAttributionFollowsInnermostRegion) {
  ipm::RankRecorder rec(0);
  rec.add_compute(sim::from_seconds(1.0));  // (root)
  {
    rec.push_section("solve");
    rec.add_compute(sim::from_seconds(2.0));
    {
      rec.push_section("halo");
      rec.add_mpi(ipm::CallKind::Sendrecv, 1024, sim::from_seconds(0.5), 0.0);
      rec.pop_section();
    }
    rec.add_compute(sim::from_seconds(3.0));
    rec.pop_section();
  }
  rec.finish(sim::from_seconds(6.5));
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.section("solve").comp), 5.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.section("halo").comm()), 0.5);
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.section("(root)").comp), 1.0);
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.totals().comp), 6.0);
}

TEST(IpmRecorder, ReenteringSectionAccumulates) {
  ipm::RankRecorder rec(0);
  for (int i = 0; i < 3; ++i) {
    rec.push_section("step");
    rec.add_compute(sim::from_seconds(1.0));
    rec.pop_section();
  }
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.section("step").comp), 3.0);
}

TEST(IpmRecorder, SysUserSplit) {
  ipm::RankRecorder rec(0);
  rec.add_mpi(ipm::CallKind::Send, 100, sim::from_seconds(1.0), 0.8);
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.totals().comm_sys), 0.8);
  EXPECT_DOUBLE_EQ(sim::to_seconds(rec.totals().comm_user), 0.2);
}

TEST(IpmRecorder, HistogramBucketsByLog2Size) {
  EXPECT_EQ(ipm::size_bucket(0), 0);
  EXPECT_EQ(ipm::size_bucket(1), 0);
  EXPECT_EQ(ipm::size_bucket(2), 1);
  EXPECT_EQ(ipm::size_bucket(1023), 9);
  EXPECT_EQ(ipm::size_bucket(1024), 10);
  EXPECT_EQ(ipm::size_bucket(1 << 20), 20);
  ipm::RankRecorder rec(0);
  rec.add_mpi(ipm::CallKind::Allreduce, 4, sim::from_seconds(0.1), 0);
  rec.add_mpi(ipm::CallKind::Allreduce, 4, sim::from_seconds(0.2), 0);
  rec.add_mpi(ipm::CallKind::Allreduce, 4096, sim::from_seconds(0.3), 0);
  EXPECT_EQ(rec.histogram(ipm::CallKind::Allreduce, 2).count, 2u);
  EXPECT_EQ(rec.histogram(ipm::CallKind::Allreduce, 12).count, 1u);
  EXPECT_EQ(rec.histogram(ipm::CallKind::Allreduce, 12).bytes, 4096u);
}

TEST(IpmRecorder, RegionRaii) {
  ipm::RankRecorder rec(0);
  {
    ipm::Region r(rec, "outer");
    rec.add_compute(100);
  }
  rec.add_compute(50);
  EXPECT_EQ(rec.section("outer").comp, 100);
}

TEST(JobReport, CommPctAndImbalance) {
  std::vector<ipm::RankRecorder> recs;
  for (int r = 0; r < 2; ++r) recs.emplace_back(r);
  // Rank 0: 8 s comp + 2 s comm; rank 1: 6 s comp + 4 s comm; wall 10 s.
  recs[0].add_compute(sim::from_seconds(8));
  recs[0].add_mpi(ipm::CallKind::Recv, 8, sim::from_seconds(2), 0.5);
  recs[1].add_compute(sim::from_seconds(6));
  recs[1].add_mpi(ipm::CallKind::Send, 8, sim::from_seconds(4), 0.5);
  recs[0].finish(sim::from_seconds(10));
  recs[1].finish(sim::from_seconds(10));
  ipm::JobReport rep(std::move(recs));
  EXPECT_DOUBLE_EQ(rep.wall_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(rep.comm_pct(), 100.0 * 6 / 20);
  // mean comp 7, max 8 -> (8-7)/10 = 10%
  EXPECT_DOUBLE_EQ(rep.imbalance_pct(), 10.0);
  EXPECT_DOUBLE_EQ(rep.comp_seconds(), 7.0);
  EXPECT_DOUBLE_EQ(rep.comm_seconds(), 3.0);
}

TEST(JobReport, RankBreakdownRows) {
  std::vector<ipm::RankRecorder> recs;
  recs.emplace_back(0);
  recs[0].push_section("ATM_STEP");
  recs[0].add_compute(sim::from_seconds(3));
  recs[0].add_mpi(ipm::CallKind::Allreduce, 4, sim::from_seconds(1), 0.9);
  recs[0].pop_section();
  recs[0].finish(sim::from_seconds(4));
  ipm::JobReport rep(std::move(recs));
  const auto rows = rep.rank_breakdown("ATM_STEP");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].comp_s, 3.0);
  EXPECT_NEAR(rows[0].comm_sys_s, 0.9, 1e-9);
  EXPECT_NEAR(rows[0].comm_user_s, 0.1, 1e-9);
}

TEST(JobReport, TextSummaryMentionsSections) {
  std::vector<ipm::RankRecorder> recs;
  recs.emplace_back(0);
  recs[0].push_section("KSp");
  recs[0].add_compute(sim::from_seconds(1));
  recs[0].pop_section();
  recs[0].finish(sim::from_seconds(1));
  ipm::JobReport rep(std::move(recs));
  const auto text = rep.text_summary("chaste");
  EXPECT_NE(text.find("KSp"), std::string::npos);
  EXPECT_NE(text.find("chaste"), std::string::npos);
}

TEST(JobReport, CallTableListsUsedCallsOnly) {
  std::vector<ipm::RankRecorder> recs;
  recs.emplace_back(0);
  recs[0].add_mpi(ipm::CallKind::Allreduce, 8, sim::from_seconds(1.5), 0);
  recs[0].add_mpi(ipm::CallKind::Send, 100, sim::from_seconds(0.5), 0);
  recs[0].finish(sim::from_seconds(2));
  ipm::JobReport rep(std::move(recs));
  const auto table = rep.call_table_str();
  EXPECT_NE(table.find("MPI_Allreduce"), std::string::npos);
  EXPECT_NE(table.find("MPI_Send"), std::string::npos);
  EXPECT_EQ(table.find("MPI_Alltoall"), std::string::npos);  // never called
  EXPECT_NE(table.find("75.0"), std::string::npos);          // allreduce share
}

TEST(JobReport, RankBreakdownCsvRoundTrips) {
  std::vector<ipm::RankRecorder> recs;
  for (int r = 0; r < 2; ++r) {
    recs.emplace_back(r);
    recs[static_cast<std::size_t>(r)].add_compute(sim::from_seconds(r + 1));
    recs[static_cast<std::size_t>(r)].finish(sim::from_seconds(2));
  }
  ipm::JobReport rep(std::move(recs));
  const auto csv = rep.rank_breakdown_csv("");
  EXPECT_NE(csv.find("rank,comp_s"), std::string::npos);
  EXPECT_NE(csv.find("0,1,"), std::string::npos);
  EXPECT_NE(csv.find("1,2,"), std::string::npos);
}

// Integration: a real simulated job produces sensible IPM numbers.
TEST(IpmIntegration, CommBoundJobShowsHighCommPct) {
  mpi::JobConfig c;
  c.platform = plat::dcc();
  c.np = 16;  // two GigE nodes
  c.name = "pingpong";
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    auto& comm = env.world();
    double x = 1;
    for (int i = 0; i < 200; ++i) x = comm.allreduce_one(x, mpi::Op::Sum);
    env.compute(0.001);
  });
  EXPECT_GT(r.ipm.comm_pct(), 80.0);  // latency-bound collectives dominate
}

TEST(IpmIntegration, ComputeBoundJobShowsLowCommPct) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = 8;
  c.name = "compute";
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    env.compute(1.0);
    env.world().barrier();
  });
  EXPECT_LT(r.ipm.comm_pct(), 2.0);
}

TEST(IpmIntegration, DccCommIsMostlySystemTime) {
  mpi::JobConfig c;
  c.platform = plat::dcc();
  c.np = 16;
  c.name = "systime";
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    auto& comm = env.world();
    std::vector<double> buf(1024, 1.0);
    for (int i = 0; i < 50; ++i) {
      const int other = (env.rank() + 8) % 16;  // always inter-node
      comm.sendrecv(other, i, buf.data(), buf.size(), other, i, buf.data(), buf.size());
    }
  });
  const auto rows = r.ipm.rank_breakdown("");
  double user = 0, sys = 0;
  for (const auto& row : rows) {
    user += row.comm_user_s;
    sys += row.comm_sys_s;
  }
  EXPECT_GT(sys, 2 * user);  // Fig 7: DCC comm time is primarily system time
}

TEST(Trace, RecordsComputeMpiAndIoSpans) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = 2;
  c.enable_trace = true;
  c.name = "traced";
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    env.compute(0.01);
    env.io_read(1 << 20);
    double x = env.world().allreduce_one(1.0, mpi::Op::Sum);
    (void)x;
  });
  ASSERT_NE(r.trace, nullptr);
  int comp = 0, io = 0, mpi_ev = 0;
  for (const auto& ev : r.trace->events()) {
    ASSERT_LE(ev.begin, ev.end);
    ASSERT_TRUE(ev.rank == 0 || ev.rank == 1);
    switch (ev.kind) {
      case ipm::TraceEvent::Kind::Compute: ++comp; break;
      case ipm::TraceEvent::Kind::Io: ++io; break;
      case ipm::TraceEvent::Kind::Mpi: ++mpi_ev; break;
    }
  }
  EXPECT_EQ(comp, 2);
  EXPECT_EQ(io, 2);
  EXPECT_EQ(mpi_ev, 2);  // one Allreduce span per rank
}

TEST(Trace, DisabledByDefault) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = 1;
  c.name = "untraced";
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) { env.compute(0.001); });
  EXPECT_EQ(r.trace, nullptr);
}

TEST(Trace, ChromeJsonIsWellFormedEnough) {
  ipm::Trace t;
  t.add(ipm::TraceEvent{.rank = 3,
                        .begin = cirrus::sim::from_seconds(1.0),
                        .end = cirrus::sim::from_seconds(1.5),
                        .kind = ipm::TraceEvent::Kind::Mpi,
                        .call = ipm::CallKind::Allreduce,
                        .bytes = 8,
                        .peer = -1});
  const auto json = t.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"MPI_Allreduce\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);  // 0.5 s in us
  EXPECT_EQ(json[json.size() - 2], ']');
}

TEST(Trace, ForRankFilters) {
  ipm::Trace t;
  for (int r = 0; r < 3; ++r) {
    t.add(ipm::TraceEvent{.rank = r, .begin = 0, .end = 1,
                          .kind = ipm::TraceEvent::Kind::Compute,
                          .call = ipm::CallKind::kCount, .bytes = 0, .peer = -1});
  }
  EXPECT_EQ(t.for_rank(1).size(), 1u);
  EXPECT_EQ(t.for_rank(7).size(), 0u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(IpmIntegration, IoTimeIsBooked) {
  mpi::JobConfig c;
  c.platform = plat::dcc();
  c.np = 1;
  c.name = "io";
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    env.io_read(45'000'000, true);  // 1 virtual second at 45 MB/s
  });
  EXPECT_NEAR(r.ipm.io_seconds(), 1.0, 0.1);
}
