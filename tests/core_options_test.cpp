// Tests for the command-line option parser the example drivers and bench
// targets share, including the flag vocabulary cirrus_run exposes
// (--topo/--oversub/--placement/--mtbf/--ckpt) and its error paths.
#include "core/options.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "topo/topo.hpp"

namespace {

using cirrus::core::Options;

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, KeyValuePairsAndFlags) {
  const auto opts = parse({"--np", "32", "--verbose", "--platform", "vayu"});
  EXPECT_EQ(opts.get_int("np", 0), 32);
  EXPECT_EQ(opts.get_or("platform", "dcc"), "vayu");
  EXPECT_TRUE(opts.has("verbose"));           // flag: present, no value
  EXPECT_FALSE(opts.get("verbose"));          // ... so get() is empty
  EXPECT_FALSE(opts.has("quiet"));
  EXPECT_EQ(opts.get_int("missing", 7), 7);   // defaults pass through
  EXPECT_EQ(opts.program(), "prog");
}

TEST(Options, FlagFollowedByOptionStaysAFlag) {
  // `--check --jobs 4`: --check must not swallow "--jobs" as its value.
  const auto opts = parse({"--check", "--jobs", "4"});
  EXPECT_TRUE(opts.has("check"));
  EXPECT_FALSE(opts.get("check"));
  EXPECT_EQ(opts.get_int("jobs", 0), 4);
}

TEST(Options, PositionalsAreCollected) {
  const auto opts = parse({"CG", "--np", "16", "FT"});
  EXPECT_EQ(opts.positional(), (std::vector<std::string>{"CG", "FT"}));
}

TEST(Options, NumericParsingRejectsJunk) {
  const auto opts = parse({"--np", "3x", "--oversub", "fast", "--mtbf", "120"});
  EXPECT_THROW((void)opts.get_int("np", 0), std::invalid_argument);
  EXPECT_THROW((void)opts.get_double("oversub", 1.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(opts.get_double("mtbf", 0.0), 120.0);
}

TEST(Options, BareDoubleDashThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Options, LastRepeatedKeyWins) {
  const auto opts = parse({"--np", "8", "--np", "16"});
  EXPECT_EQ(opts.get_int("np", 0), 16);
}

// The cirrus_run flag vocabulary: string-valued flags are decoded by the
// topo subsystem, which owns the accepted spellings and the error messages.
TEST(Options, TopologyFlagVocabulary) {
  using cirrus::topo::Kind;
  using cirrus::topo::Placement;
  const auto opts = parse({"--topo", "fattree", "--oversub", "2", "--placement", "scatter",
                           "--mtbf", "3600", "--ckpt", "300"});
  EXPECT_EQ(cirrus::topo::kind_from_string(opts.get_or("topo", "crossbar")), Kind::FatTree);
  EXPECT_EQ(cirrus::topo::placement_from_string(opts.get_or("placement", "contig")),
            Placement::Scattered);
  EXPECT_DOUBLE_EQ(opts.get_double("oversub", 1.0), 2.0);
  EXPECT_DOUBLE_EQ(opts.get_double("mtbf", 0.0), 3600.0);
  EXPECT_DOUBLE_EQ(opts.get_double("ckpt", 0.0), 300.0);
  // Aliases and case-insensitivity.
  EXPECT_EQ(cirrus::topo::kind_from_string("Fat-Tree"), Kind::FatTree);
  EXPECT_EQ(cirrus::topo::placement_from_string("BLOCK"), Placement::Contiguous);
}

TEST(Options, BadTopologyValuesThrow) {
  EXPECT_THROW(cirrus::topo::kind_from_string("torus"), std::invalid_argument);
  EXPECT_THROW(cirrus::topo::placement_from_string("random"), std::invalid_argument);
}

TEST(Options, KeysAreSortedAndComplete) {
  const auto opts = parse({"--np", "32", "--verbose", "--alpha", "1"});
  EXPECT_EQ(opts.keys(), (std::vector<std::string>{"alpha", "np", "verbose"}));
  EXPECT_TRUE(parse({}).keys().empty());
}

TEST(Options, UnknownKeysRejectsTypos) {
  using cirrus::core::unknown_keys;
  const auto opts = parse({"--np", "32", "--sede", "7", "--verbose"});
  // "sede" (a typo of "seed") is flagged; the known flags are not.
  EXPECT_EQ(unknown_keys(opts, {"np", "seed", "verbose"}),
            (std::vector<std::string>{"sede"}));
  EXPECT_TRUE(unknown_keys(opts, {"np", "sede", "verbose"}).empty());
  // Every key unknown: all reported, sorted.
  EXPECT_EQ(unknown_keys(opts, {}), (std::vector<std::string>{"np", "sede", "verbose"}));
}

}  // namespace
