// Unit tests for the network and filesystem cost models.
#include "net/network.hpp"

#include <gtest/gtest.h>

namespace net = cirrus::net;
namespace plat = cirrus::plat;
namespace sim = cirrus::sim;

namespace {

plat::Platform quiet(plat::Platform p) {
  p.nic.jitter_prob = 0.0;  // deterministic costs for exact assertions
  return p;
}

}  // namespace

TEST(Network, SingleTransferCostIsOverheadPlusSerializationPlusLatency) {
  sim::Engine eng;
  const auto p = quiet(plat::vayu());
  net::Network n(eng, p, 2, 1);
  const std::size_t bytes = 1 << 20;
  const auto t = n.transfer(0, 1, bytes);
  const double expect_s = p.nic.per_msg_overhead_us * 1e-6 +
                          static_cast<double>(bytes) / p.nic.bandwidth_Bps +
                          p.nic.latency_us * 1e-6;
  EXPECT_NEAR(sim::to_seconds(t.arrival), expect_s, 1e-9);
  EXPECT_LT(t.sender_free, t.arrival);
}

TEST(Network, ZeroByteMessageCostsLatencyOnly) {
  sim::Engine eng;
  const auto p = quiet(plat::ec2());
  net::Network n(eng, p, 2, 1);
  const auto t = n.transfer(0, 1, 0);
  EXPECT_NEAR(sim::to_micros(t.arrival), p.nic.per_msg_overhead_us + p.nic.latency_us, 1e-3);
}

TEST(Network, CostIsMonotonicInMessageSize) {
  sim::Engine eng;
  net::Network n(eng, quiet(plat::dcc()), 2, 1);
  sim::SimTime prev = 0;
  for (std::size_t bytes = 1; bytes <= (8u << 20); bytes *= 4) {
    // Fresh network each time so reservations don't accumulate.
    sim::Engine e2;
    net::Network n2(e2, quiet(plat::dcc()), 2, 1);
    const auto t = n2.transfer(0, 1, bytes);
    EXPECT_GE(t.arrival, prev) << bytes;
    prev = t.arrival;
  }
}

TEST(Network, TxPortSerializesBackToBackTransfers) {
  sim::Engine eng;
  const auto p = quiet(plat::ec2());
  net::Network n(eng, p, 3, 1);
  const std::size_t bytes = 1 << 20;
  const auto t1 = n.transfer(0, 1, bytes);
  const auto t2 = n.transfer(0, 2, bytes);  // same instant, same TX port
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  EXPECT_NEAR(sim::to_seconds(t2.arrival) - sim::to_seconds(t1.arrival), busy, 1e-6);
}

TEST(Network, RxPortSerializesIncast) {
  sim::Engine eng;
  auto p = quiet(plat::ec2());
  p.nic.incast_penalty = 1.0;  // isolate the FIFO serialisation effect
  net::Network n(eng, p, 3, 1);
  const std::size_t bytes = 1 << 20;
  const auto t1 = n.transfer(0, 2, bytes);
  const auto t2 = n.transfer(1, 2, bytes);  // distinct TX ports, same RX port
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  EXPECT_NEAR(sim::to_seconds(t2.arrival) - sim::to_seconds(t1.arrival), busy, 1e-6);
}

TEST(Network, IncastFromDistinctSourcesIsPenalized) {
  sim::Engine eng;
  const auto p = quiet(plat::ec2());  // incast_penalty 2.5
  net::Network n(eng, p, 3, 1);
  const std::size_t bytes = 1 << 20;
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  const auto t1 = n.transfer(0, 2, bytes);
  const auto t2 = n.transfer(1, 2, bytes);  // different source, port busy
  EXPECT_NEAR(sim::to_seconds(t2.arrival) - sim::to_seconds(t1.arrival),
              busy * p.nic.incast_penalty, 1e-6);
}

TEST(Network, BackToBackSameSourceIsNotPenalized) {
  // A single stream (osu_bw) keeps the RX port busy but must still achieve
  // the nominal link rate: same-source transfers are exempt.
  sim::Engine eng;
  const auto p = quiet(plat::ec2());
  net::Network n(eng, p, 3, 1);
  const std::size_t bytes = 1 << 20;
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  const auto t1 = n.transfer(0, 2, bytes);
  const auto t2 = n.transfer(0, 2, bytes);
  EXPECT_NEAR(sim::to_seconds(t2.arrival) - sim::to_seconds(t1.arrival), busy, 1e-6);
}

TEST(Network, HalfDuplexSharesOnePortBetweenDirections) {
  // On the DCC's software-switched vNIC a node cannot transmit and receive
  // at full rate simultaneously.
  sim::Engine eng;
  auto p = quiet(plat::dcc());
  net::Network n(eng, p, 2, 1);
  const std::size_t bytes = 4 << 20;
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  const auto a = n.transfer(0, 1, bytes);  // node0 TX, node1 RX
  const auto b = n.transfer(1, 0, bytes);  // node1 TX must queue behind its RX
  EXPECT_GT(sim::to_seconds(b.arrival), sim::to_seconds(a.arrival) + 0.5 * busy);
}

TEST(Network, FullDuplexAllowsSimultaneousDirections) {
  sim::Engine eng;
  auto p = quiet(plat::vayu());
  net::Network n(eng, p, 2, 1);
  const std::size_t bytes = 4 << 20;
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  const auto a = n.transfer(0, 1, bytes);
  const auto b = n.transfer(1, 0, bytes);
  EXPECT_LT(std::abs(sim::to_seconds(b.arrival) - sim::to_seconds(a.arrival)), 0.1 * busy);
}

TEST(Network, IntraNodeUsesSharedMemoryModel) {
  sim::Engine eng;
  const auto p = quiet(plat::dcc());
  net::Network n(eng, p, 2, 1);
  const std::size_t bytes = 1 << 20;
  const auto shm = n.transfer(0, 0, bytes);
  const auto inter = n.transfer(0, 1, bytes);
  EXPECT_LT(shm.arrival, inter.arrival / 10);  // shm is far faster than GigE
}

TEST(Network, IntraNodeDoesNotReserveNic) {
  sim::Engine eng;
  const auto p = quiet(plat::vayu());
  net::Network n(eng, p, 2, 1);
  n.transfer(0, 0, 64 << 20);  // big local copy
  const auto t = n.transfer(0, 1, 1024);
  // NIC was untouched by the local copy, so this is a fresh-wire cost.
  EXPECT_NEAR(sim::to_micros(t.arrival),
              p.nic.per_msg_overhead_us + 1024.0 / p.nic.bandwidth_Bps * 1e6 + p.nic.latency_us,
              0.1);
}

TEST(Network, DccJitterProducesHeavyTail) {
  sim::Engine eng;
  const auto p = plat::dcc();  // jitter on
  net::Network n(eng, p, 2, 1);
  int spikes = 0;
  constexpr int kN = 2000;
  for (int i = 0; i < kN; ++i) {
    const auto t = n.control_delay(0, 1);
    if (sim::to_micros(t) > p.nic.latency_us * 1.5) ++spikes;
  }
  EXPECT_GT(spikes, kN / 20);       // the tail exists
  EXPECT_LT(spikes, kN / 2);        // but is a tail, not the body
}

TEST(Network, VayuLatencyIsStable) {
  sim::Engine eng;
  const auto p = plat::vayu();
  net::Network n(eng, p, 2, 1);
  sim::SimTime mx = 0;
  for (int i = 0; i < 2000; ++i) mx = std::max(mx, n.control_delay(0, 1));
  EXPECT_LT(sim::to_micros(mx), 60.0);  // no vSwitch-style ms spikes
}

TEST(Network, SysFracHigherForInterNodeOnDcc) {
  sim::Engine eng;
  net::Network n(eng, plat::dcc(), 2, 1);
  EXPECT_GT(n.sys_frac(0, 1), 0.5);
  EXPECT_LT(n.sys_frac(0, 0), 0.2);
}

TEST(FileSystem, ReadTimeMatchesBandwidth) {
  sim::Engine eng;
  net::FileSystem fs(eng, plat::FsModel{.read_Bps = 100e6, .write_Bps = 50e6,
                                        .open_latency_ms = 0.0, .name = "test"});
  const auto done = fs.read(200'000'000, false);
  EXPECT_NEAR(sim::to_seconds(done), 2.0, 1e-9);
}

TEST(FileSystem, OpenLatencyAddsOnce) {
  sim::Engine eng;
  net::FileSystem fs(eng, plat::FsModel{.read_Bps = 100e6, .write_Bps = 50e6,
                                        .open_latency_ms = 10.0, .name = "test"});
  const auto done = fs.read(100e6, true);
  EXPECT_NEAR(sim::to_seconds(done), 1.0 + 0.010, 1e-9);
}

TEST(FileSystem, ConcurrentReadersSerialize) {
  sim::Engine eng;
  net::FileSystem fs(eng, plat::FsModel{.read_Bps = 100e6, .write_Bps = 50e6,
                                        .open_latency_ms = 0.0, .name = "test"});
  const auto d1 = fs.read(100e6, false);
  const auto d2 = fs.read(100e6, false);  // same instant: queues behind d1
  EXPECT_NEAR(sim::to_seconds(d1), 1.0, 1e-9);
  EXPECT_NEAR(sim::to_seconds(d2), 2.0, 1e-9);
}

TEST(FileSystem, WritesUseWriteBandwidth) {
  sim::Engine eng;
  net::FileSystem fs(eng, plat::FsModel{.read_Bps = 100e6, .write_Bps = 50e6,
                                        .open_latency_ms = 0.0, .name = "test"});
  EXPECT_NEAR(sim::to_seconds(fs.write(100e6, false)), 2.0, 1e-9);
}

TEST(FileSystem, LustreBeatsNfsByAnOrderOfMagnitude) {
  EXPECT_GT(plat::vayu().fs.read_Bps, 10 * plat::dcc().fs.read_Bps);
}
