// Unit tests for the fiber context-switch layer — the foundation everything
// else stands on, so these exercise it hard.
#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sim = cirrus::sim;

TEST(Fiber, RunsBodyToCompletionOnFirstResume) {
  int ran = 0;
  sim::Fiber f([&] { ran = 42; }, 64 << 10);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(ran, 42);
}

TEST(Fiber, YieldSuspendsAndResumeContinues) {
  std::vector<int> order;
  sim::Fiber* self = nullptr;
  sim::Fiber f(
      [&] {
        order.push_back(1);
        self->yield();
        order.push_back(3);
        self->yield();
        order.push_back(5);
      },
      64 << 10);
  self = &f;
  f.resume();
  order.push_back(2);
  f.resume();
  order.push_back(4);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, PreservesLocalStateAcrossYields) {
  sim::Fiber* self = nullptr;
  long result = 0;
  sim::Fiber f(
      [&] {
        long acc = 0;
        for (int i = 1; i <= 100; ++i) {
          acc += i;
          if (i % 10 == 0) self->yield();
        }
        result = acc;
      },
      64 << 10);
  self = &f;
  while (!f.finished()) f.resume();
  EXPECT_EQ(result, 5050);
}

TEST(Fiber, PreservesFloatingPointStateAcrossYields) {
  sim::Fiber* self = nullptr;
  double result = 0.0;
  sim::Fiber f(
      [&] {
        double x = 1.0;
        for (int i = 1; i <= 50; ++i) {
          x = x * 1.01 + 0.5;
          self->yield();
        }
        result = x;
      },
      64 << 10);
  self = &f;
  while (!f.finished()) f.resume();
  // Reference computed without yielding.
  double ref = 1.0;
  for (int i = 1; i <= 50; ++i) ref = ref * 1.01 + 0.5;
  EXPECT_DOUBLE_EQ(result, ref);
}

TEST(Fiber, ManyInterleavedFibersKeepIndependentStacks) {
  constexpr int kFibers = 64;
  constexpr int kSteps = 25;
  std::vector<std::unique_ptr<sim::Fiber>> fibers;
  std::vector<long> sums(kFibers, 0);
  std::vector<sim::Fiber*> handles(kFibers, nullptr);
  for (int i = 0; i < kFibers; ++i) {
    fibers.push_back(std::make_unique<sim::Fiber>(
        [&, i] {
          long local = 0;
          for (int s = 0; s < kSteps; ++s) {
            local += (i + 1) * (s + 1);
            handles[i]->yield();
          }
          sums[i] = local;
        },
        64 << 10));
    handles[i] = fibers.back().get();
  }
  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (auto& f : fibers) {
      if (!f->finished()) {
        f->resume();
        any_live = any_live || !f->finished();
      }
    }
  }
  for (int i = 0; i < kFibers; ++i) {
    const long expect = static_cast<long>(i + 1) * kSteps * (kSteps + 1) / 2;
    EXPECT_EQ(sums[i], expect) << "fiber " << i;
  }
}

TEST(Fiber, DeepStackUsageWithinLimitWorks) {
  // Touch ~200 KiB of a 512 KiB stack.
  sim::Fiber f(
      [] {
        volatile char buf[200 << 10];
        buf[0] = 1;
        buf[sizeof(buf) - 1] = 2;
        ASSERT_EQ(buf[0] + buf[sizeof(buf) - 1], 3);
      },
      512 << 10);
  f.resume();
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionInBodyPropagatesToResumeCaller) {
  sim::Fiber f([] { throw std::runtime_error("boom"); }, 64 << 10);
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, ExceptionAfterYieldPropagatesFromLaterResume) {
  sim::Fiber* self = nullptr;
  sim::Fiber f(
      [&] {
        self->yield();
        throw std::logic_error("later");
      },
      64 << 10);
  self = &f;
  f.resume();  // returns at the yield
  EXPECT_THROW(f.resume(), std::logic_error);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, DestroyingNeverStartedFiberIsSafe) {
  auto f = std::make_unique<sim::Fiber>([] {}, 64 << 10);
  f.reset();  // must not crash or leak (ASAN would flag a leak)
}

TEST(Fiber, HeapAllocationInsideFiberBody) {
  std::size_t total = 0;
  sim::Fiber f(
      [&] {
        std::vector<std::vector<int>> vs;
        for (int i = 0; i < 100; ++i) vs.emplace_back(1000, i);
        for (const auto& v : vs) total += std::accumulate(v.begin(), v.end(), std::size_t{0});
      },
      128 << 10);
  f.resume();
  std::size_t expect = 0;
  for (int i = 0; i < 100; ++i) expect += std::size_t{1000} * i;
  EXPECT_EQ(total, expect);
}
