# Smoke for `cirrus_bench --list-targets`: exit 0, sorted-by-name rows,
# suite + generation coverage columns, and byte-identical output on a second
# invocation. Driven from examples/CMakeLists.txt:
#   cmake -DBIN=<path-to-cirrus_bench> -P list_targets_smoke.cmake
if(NOT DEFINED BIN)
  message(FATAL_ERROR "list_targets_smoke.cmake needs -DBIN=<binary>")
endif()

execute_process(COMMAND ${BIN} --list-targets
                RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--list-targets: expected exit 0, got ${rc}:\n${out}${err}")
endif()

if(NOT out MATCHES "target" OR NOT out MATCHES "generations")
  message(FATAL_ERROR "--list-targets: missing header columns:\n${out}")
endif()
# The cross-generation suite must advertise its coverage.
if(NOT out MATCHES "ext8[ ]+gap[ ]+2012\\+2020")
  message(FATAL_ERROR "--list-targets: ext8 gap row missing or mislabelled:\n${out}")
endif()
# Paper-era targets default to 2012 coverage.
if(NOT out MATCHES "fig1[ ]+paper[ ]+2012")
  message(FATAL_ERROR "--list-targets: fig1 row missing generation column:\n${out}")
endif()

# Rows are sorted by target name (ext1 < ext8 < fig1 < tab2): deterministic,
# diffable output is the whole point of the flag.
string(FIND "${out}" "ext1" pos_ext1)
string(FIND "${out}" "ext8" pos_ext8)
string(FIND "${out}" "fig1" pos_fig1)
string(FIND "${out}" "tab2" pos_tab2)
if(NOT pos_ext1 LESS pos_ext8 OR NOT pos_ext8 LESS pos_fig1 OR NOT pos_fig1 LESS pos_tab2)
  message(FATAL_ERROR "--list-targets: rows not sorted by name:\n${out}")
endif()

# Determinism: a second run must produce byte-identical output.
execute_process(COMMAND ${BIN} --list-targets
                RESULT_VARIABLE rc2 OUTPUT_VARIABLE out2)
if(NOT out STREQUAL out2)
  message(FATAL_ERROR "--list-targets: output differs between runs")
endif()
