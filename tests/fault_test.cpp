// Tests for the fault-injection / checkpoint-restart subsystem: schedule
// determinism, kill semantics, degradation injectors, and exact recovery of
// execute-mode results across a crash.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/driver.hpp"
#include "npb/npb.hpp"
#include "platform/platform.hpp"

namespace fault = cirrus::fault;
namespace mpi = cirrus::mpi;
namespace npb = cirrus::npb;
namespace plat = cirrus::plat;
namespace cloud = cirrus::cloud;
namespace core = cirrus::core;

namespace {

fault::FaultModel busy_model() {
  fault::FaultModel m;
  m.crash_mtbf_s = 4000;
  m.straggler_mtbf_s = 2500;
  m.link_mtbf_s = 3000;
  return m;
}

mpi::JobConfig cg_config(bool execute) {
  return npb::make_job(npb::benchmark("CG"), npb::Class::S, plat::vayu(), 4, execute, 1);
}

void cg_body(mpi::RankEnv& env) {
  const auto res = npb::run_cg(env, npb::Class::S);
  if (env.rank() == 0) {
    env.report("verified", res.verified ? 1.0 : 0.0);
    env.report("zeta", res.verification_value);
  }
}

void ep_body(mpi::RankEnv& env) {
  const auto res = npb::run_ep(env, npb::Class::S);
  if (env.rank() == 0) {
    env.report("verified", res.verified ? 1.0 : 0.0);
    env.report("sums", res.verification_value);
  }
}

}  // namespace

// ------------------------------------------------------- schedule generation
TEST(FaultSchedule, GenerateIsDeterministic) {
  const auto a = fault::FaultSchedule::generate(busy_model(), 8, 86400, 42);
  const auto b = fault::FaultSchedule::generate(busy_model(), 8, 86400, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_GT(a.events().size(), 0u);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_DOUBLE_EQ(a.events()[i].at_s, b.events()[i].at_s);
    EXPECT_EQ(a.events()[i].node, b.events()[i].node);
  }
}

TEST(FaultSchedule, PerNodeSubstreamsAreNodeCountStable) {
  // Adding nodes must not perturb the fault times of existing nodes: each
  // (node, class) pair draws from its own forked substream.
  const auto small = fault::FaultSchedule::generate(busy_model(), 2, 86400, 7);
  const auto big = fault::FaultSchedule::generate(busy_model(), 6, 86400, 7);
  std::vector<fault::FaultEvent> small_events = small.events();
  std::vector<fault::FaultEvent> big_prefix;
  for (const auto& ev : big.events()) {
    if (ev.node < 2) big_prefix.push_back(ev);
  }
  ASSERT_EQ(small_events.size(), big_prefix.size());
  for (std::size_t i = 0; i < small_events.size(); ++i) {
    EXPECT_EQ(small_events[i].kind, big_prefix[i].kind);
    EXPECT_DOUBLE_EQ(small_events[i].at_s, big_prefix[i].at_s);
    EXPECT_EQ(small_events[i].node, big_prefix[i].node);
  }
}

TEST(FaultSchedule, SeedChangesSchedule) {
  const auto a = fault::FaultSchedule::generate(busy_model(), 4, 86400, 1);
  const auto b = fault::FaultSchedule::generate(busy_model(), 4, 86400, 2);
  ASSERT_FALSE(a.events().empty());
  ASSERT_FALSE(b.events().empty());
  EXPECT_NE(a.events()[0].at_s, b.events()[0].at_s);
}

TEST(FaultSchedule, EventsSortedAndWithinHorizon) {
  const auto s = fault::FaultSchedule::generate(busy_model(), 4, 43200, 3);
  double prev = 0;
  for (const auto& ev : s.events()) {
    EXPECT_GE(ev.at_s, prev);
    EXPECT_LT(ev.at_s, 43200);
    prev = ev.at_s;
  }
}

TEST(FaultSchedule, QueriesMatchHandCraftedEvents) {
  fault::FaultSchedule s;
  s.add({fault::FaultKind::Straggler, 100, 0, /*duration_s=*/50, /*magnitude=*/4.0});
  s.add({fault::FaultKind::LinkDegrade, 200, 1, 60, /*magnitude=*/0.25, 800});
  s.add({fault::FaultKind::NodeCrash, 500, 0});
  EXPECT_DOUBLE_EQ(s.compute_slowdown(0, 120), 4.0);
  EXPECT_DOUBLE_EQ(s.compute_slowdown(0, 99), 1.0);   // before the window
  EXPECT_DOUBLE_EQ(s.compute_slowdown(0, 151), 1.0);  // after the window
  EXPECT_DOUBLE_EQ(s.compute_slowdown(1, 120), 1.0);  // other node untouched
  EXPECT_DOUBLE_EQ(s.link_bw_factor(1, 230), 0.25);
  EXPECT_DOUBLE_EQ(s.link_bw_factor(0, 230), 1.0);
  EXPECT_DOUBLE_EQ(s.link_extra_latency_us(1, 230), 800);
  const auto* fatal = s.next_fatal_after(0);
  ASSERT_NE(fatal, nullptr);
  EXPECT_DOUBLE_EQ(fatal->at_s, 500);
  EXPECT_EQ(s.next_fatal_after(500), nullptr);
}

// ------------------------------------------------------------ kill semantics
TEST(FaultInjection, KillEventAbortsRunJob) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  cfg.faults.kill_at_s = 0.5 * t0;
  try {
    mpi::run_job(cfg, cg_body);
    FAIL() << "expected JobKilledError";
  } catch (const mpi::JobKilledError& e) {
    EXPECT_NEAR(e.at_seconds, 0.5 * t0, 1e-5);  // tick quantisation
  }
}

TEST(FaultInjection, KillAfterCompletionIsIgnored) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  cfg.faults.kill_at_s = 2.0 * t0;  // fires after the last rank finished
  EXPECT_NO_THROW(mpi::run_job(cfg, cg_body));
}

// ------------------------------------------------------ degradation injectors
TEST(FaultInjection, StragglerStretchesTheRun) {
  auto cfg = npb::make_job(npb::benchmark("CG"), npb::Class::S, plat::vayu(), 8, false, 1);
  cfg.max_ranks_per_node = 4;  // 2 nodes
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::Straggler, 0, 0, /*duration_s=*/1e9, /*magnitude=*/4.0});
  const auto run = fault::run_resilient(cfg, cg_body, s);
  EXPECT_EQ(run.attempts, 1);
  // One of two nodes computing 4x slower gates the BSP steps.
  EXPECT_GT(run.makespan_s, 1.5 * t0);
}

TEST(FaultInjection, LinkDegradationStretchesTheRun) {
  auto cfg = npb::make_job(npb::benchmark("FT"), npb::Class::S, plat::dcc(), 8, false, 1);
  cfg.max_ranks_per_node = 4;  // alltoall across the degraded NIC
  const double t0 = mpi::run_job(cfg, [](mpi::RankEnv& env) { npb::run_ft(env, npb::Class::S); })
                        .elapsed_seconds;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::LinkDegrade, 0, 0, 1e9, /*magnitude=*/0.1,
         /*extra_latency_us=*/2000});
  const auto run = fault::run_resilient(
      cfg, [](mpi::RankEnv& env) { npb::run_ft(env, npb::Class::S); }, s);
  EXPECT_EQ(run.attempts, 1);
  EXPECT_GT(run.makespan_s, 1.2 * t0);
}

// --------------------------------------------------------- checkpoint/restart
TEST(Resilience, CgCrashRestartReproducesExactResidual) {
  // The ISSUE's acceptance scenario: a CG run crashed mid-flight and
  // restarted from its checkpoint must verify with the *same* residual as an
  // uninterrupted run — restore is bitwise (memcpy of the solver state).
  auto cfg = cg_config(true);
  const auto clean = mpi::run_job(cfg, cg_body);
  ASSERT_EQ(clean.values.at("verified"), 1.0);
  const double t0 = clean.elapsed_seconds;

  cfg.checkpoint_interval_s = t0 / 8;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::NodeCrash, 0.55 * t0, 0});
  const auto run = fault::run_resilient(cfg, cg_body, s);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.faults_hit, 1);
  EXPECT_GT(run.checkpoints_taken, 0);
  EXPECT_GT(run.lost_work_s, 0);
  EXPECT_EQ(run.result.values.at("verified"), 1.0);
  EXPECT_EQ(run.result.values.at("zeta"), clean.values.at("zeta"));  // exact
  EXPECT_GT(run.makespan_s, t0);  // crash + restart cannot be free
}

TEST(Resilience, EpCrashRestartReproducesExactSums) {
  auto cfg = npb::make_job(npb::benchmark("EP"), npb::Class::S, plat::vayu(), 4, true, 1);
  const auto clean = mpi::run_job(cfg, ep_body);
  ASSERT_EQ(clean.values.at("verified"), 1.0);
  const double t0 = clean.elapsed_seconds;

  cfg.checkpoint_interval_s = t0 / 8;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::NodeCrash, 0.6 * t0, 0});
  const auto run = fault::run_resilient(cfg, ep_body, s);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.result.values.at("verified"), 1.0);
  EXPECT_EQ(run.result.values.at("sums"), clean.values.at("sums"));
}

TEST(Resilience, NoCheckpointsMeansFullRerun) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::NodeCrash, 0.5 * t0, 0});
  fault::ResilientOptions opts;
  opts.requeue_delay_s = 10;
  const auto run = fault::run_resilient(cfg, cg_body, s, opts);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.checkpoints_taken, 0);
  EXPECT_NEAR(run.lost_work_s, 0.5 * t0, 1e-4);           // everything re-run
  EXPECT_NEAR(run.makespan_s, 1.5 * t0 + 10, 0.05 * t0);  // partial + requeue + full
}

TEST(Resilience, CheckpointsBoundLostWork) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::NodeCrash, 0.5 * t0, 0});
  cfg.checkpoint_interval_s = t0 / 16;
  const auto run = fault::run_resilient(cfg, cg_body, s);
  EXPECT_GT(run.checkpoints_taken, 2);
  // Lost work is at most one interval plus the checkpoint's own I/O time.
  EXPECT_LT(run.lost_work_s, 0.25 * t0);
  EXPECT_GT(run.checkpoint_bytes, 0u);
}

TEST(Resilience, SpotReclaimWarningTriggersCheckpoint) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  // No interval checkpointing at all: the only checkpoint is the one forced
  // by the reclaim warning, so nearly nothing is lost.
  cfg.checkpoint_interval_s = 0;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::SpotReclaim, 0.7 * t0, -1, 0, 1.0, 0,
         /*warning_s=*/0.2 * t0});
  const auto run = fault::run_resilient(cfg, cg_body, s);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_EQ(run.checkpoints_taken, 1);
  EXPECT_LT(run.lost_work_s, 0.25 * t0);
}

TEST(Resilience, ProvisionerRestartChargesBootTime) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::NodeCrash, 0.5 * t0, 0});
  fault::ResilientOptions opts;
  opts.instance_type = "cc1.4xlarge";
  opts.instances = 2;
  opts.hourly_usd = 3.20;
  const auto run = fault::run_resilient(cfg, cg_body, s, opts);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_GT(run.restart_delay_s, 10.0);  // instances take time to boot
  EXPECT_GT(run.cost_usd, 0.0);
}

TEST(Resilience, ResilientRunIsDeterministicUnderParallelSweep) {
  // ext5's contract: a sweep of resilient runs is bit-identical no matter
  // how many driver threads execute it.
  const auto sweep = [](int jobs) {
    return core::run_sweep<double>(
        4,
        [](std::size_t i) {
          auto cfg = cg_config(false);
          cfg.checkpoint_interval_s = 2.0;
          fault::FaultModel m;
          m.crash_mtbf_s = 30.0 + static_cast<double>(10 * i);
          const auto s = fault::FaultSchedule::generate(m, 2, 4000, 11 + i);
          const auto run = fault::run_resilient(cfg, cg_body, s);
          return run.makespan_s + 1e-6 * run.attempts;
        },
        jobs);
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]);  // bitwise: same events, same math
  }
}

TEST(Resilience, MergedTraceCoversAllAttempts) {
  auto cfg = cg_config(false);
  const double t0 = mpi::run_job(cfg, cg_body).elapsed_seconds;
  cfg.enable_trace = true;
  cfg.checkpoint_interval_s = t0 / 8;
  fault::FaultSchedule s;
  s.add({fault::FaultKind::NodeCrash, 0.5 * t0, 0});
  const auto run = fault::run_resilient(cfg, cg_body, s);
  ASSERT_EQ(run.attempts, 2);
  ASSERT_NE(run.trace, nullptr);
  EXPECT_EQ(run.trace.get(), run.result.trace.get());
  // The killed attempt's partial spans are merged in, offset to the global
  // clock: some event must end after the makespan of the first attempt.
  double last_end = 0;
  for (const auto& ev : run.trace->events()) {
    last_end = std::max(last_end, cirrus::sim::to_seconds(ev.end));
  }
  EXPECT_GT(last_end, 0.9 * run.makespan_s - 1.0);
  EXPECT_GT(run.trace->size(), 0u);
}

// ------------------------------------------------------------- emergent spot
TEST(SpotSim, HighBidMatchesPlainRun) {
  cloud::SpotMarket m({}, 23);
  auto cfg = cg_config(false);
  fault::SpotJobOptions opts;
  opts.bid = 1.60;  // never interrupted at on-demand price
  opts.checkpoint_interval_s = 0;
  const auto run = fault::run_on_spot(m, cfg, cg_body, opts);
  EXPECT_EQ(run.interruptions, 0);
  EXPECT_EQ(run.attempts, 1);
  EXPECT_FALSE(run.finished_on_demand);
  EXPECT_GT(run.boot_overhead_s, 0.0);  // the first boot is still charged
  EXPECT_GT(run.cost_usd, 0.0);
}

TEST(SpotSim, SameSeedSameRun) {
  const auto go = [] {
    cloud::SpotMarket m({}, 101);
    auto cfg = cg_config(false);
    fault::SpotJobOptions opts;
    opts.bid = 0.45;
    opts.checkpoint_interval_s = 1.0;
    return fault::run_on_spot(m, cfg, cg_body, opts);
  };
  const auto a = go();
  const auto b = go();
  EXPECT_DOUBLE_EQ(a.finish_s, b.finish_s);
  EXPECT_DOUBLE_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.interruptions, b.interruptions);
  EXPECT_EQ(a.attempts, b.attempts);
}
