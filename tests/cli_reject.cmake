# Asserts a CLI binary rejects an unknown flag: exit code 2 and a usage
# string on stderr. Driven from examples/CMakeLists.txt:
#   cmake -DBIN=<path> -DFLAG=--bogus -P cli_reject.cmake
if(NOT DEFINED BIN OR NOT DEFINED FLAG)
  message(FATAL_ERROR "cli_reject.cmake needs -DBIN=<binary> -DFLAG=<flag>")
endif()

execute_process(
  COMMAND ${BIN} ${FLAG}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
)

if(NOT rc EQUAL 2)
  message(FATAL_ERROR "${BIN} ${FLAG}: expected exit code 2, got ${rc}")
endif()
string(TOLOWER "${out}${err}" all)
if(NOT all MATCHES "usage")
  message(FATAL_ERROR "${BIN} ${FLAG}: no usage text in output:\n${out}${err}")
endif()
if(NOT all MATCHES "unknown")
  message(FATAL_ERROR "${BIN} ${FLAG}: error does not name the unknown option:\n${out}${err}")
endif()
