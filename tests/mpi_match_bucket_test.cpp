// Matching semantics of the hashed (source, tag) mailbox buckets: FIFO per
// (source, tag) pair, any-source/any-tag wildcard arbitration against both
// the unexpected queue and posted receives, and collectives on
// non-power-of-two communicators (which stress odd bucket/tag patterns).
#include <gtest/gtest.h>

#include <vector>

#include "mpi/minimpi.hpp"

namespace mpi = cirrus::mpi;
namespace plat = cirrus::plat;

namespace {

mpi::JobConfig cfg(int np) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = np;
  c.seed = 42;
  c.name = "match-test";
  return c;
}

}  // namespace

TEST(MatchBuckets, FifoPerSourceTagPair) {
  // Messages on one (source, tag) pair must be received in send order even
  // when many sit unexpected, interleaved with traffic on other tags.
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) {
        double v = 100 + i;
        c.send(1, /*tag=*/5, &v, 1);
        double w = 200 + i;
        c.send(1, /*tag=*/6, &w, 1);
      }
    } else {
      env.compute(0.001);  // let everything arrive unexpected first
      for (int i = 0; i < 8; ++i) {
        double v = 0;
        c.recv(0, 5, &v, 1);
        ASSERT_DOUBLE_EQ(v, 100 + i);
      }
      for (int i = 0; i < 8; ++i) {
        double w = 0;
        c.recv(0, 6, &w, 1);
        ASSERT_DOUBLE_EQ(w, 200 + i);
      }
      env.report("ok", 1);
    }
  });
  EXPECT_EQ(r.values.at("ok"), 1);
}

TEST(MatchBuckets, AnySourcePicksEarliestArrival) {
  // Two senders with staggered start times; an any-source receive must match
  // arrival order across buckets, not bucket iteration order.
  auto r = mpi::run_job(cfg(3), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 1) {
      env.compute(0.002);  // rank 1 sends second
      double v = 1;
      c.send(0, 7, &v, 1);
    } else if (c.rank() == 2) {
      double v = 2;  // rank 2 sends first
      c.send(0, 7, &v, 1);
    } else {
      env.compute(0.004);  // both messages are unexpected by now
      double first = 0, second = 0;
      c.recv(mpi::kAnySource, 7, &first, 1);
      c.recv(mpi::kAnySource, 7, &second, 1);
      env.report("first", first);
      env.report("second", second);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("first"), 2);   // rank 2 arrived first
  EXPECT_DOUBLE_EQ(r.values.at("second"), 1);  // rank 1 arrived second
}

TEST(MatchBuckets, AnyTagPicksEarliestArrival) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      double v = 31;
      c.send(1, /*tag=*/3, &v, 1);
      env.compute(0.001);
      v = 91;
      c.send(1, /*tag=*/9, &v, 1);
    } else {
      env.compute(0.002);
      double first = 0, second = 0;
      c.recv(0, mpi::kAnyTag, &first, 1);
      c.recv(0, mpi::kAnyTag, &second, 1);
      env.report("first", first);
      env.report("second", second);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("first"), 31);
  EXPECT_DOUBLE_EQ(r.values.at("second"), 91);
}

TEST(MatchBuckets, WildcardAndExactPostedOrderRespected) {
  // A message matches the earliest-posted receive among all candidates,
  // whether that receive is exact or wildcard.
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      env.compute(0.001);  // both receives are posted before the send lands
      double v = 55;
      c.send(1, 4, &v, 1);
      v = 66;
      c.send(1, 4, &v, 1);
    } else {
      double wild = 0, exact = 0;
      mpi::Request rw = c.irecv(mpi::kAnySource, mpi::kAnyTag, &wild, 1);
      mpi::Request re = c.irecv(0, 4, &exact, 1);
      c.wait(rw);
      c.wait(re);
      // The wildcard was posted first, so it takes the first message.
      env.report("wild", wild);
      env.report("exact", exact);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("wild"), 55);
  EXPECT_DOUBLE_EQ(r.values.at("exact"), 66);
}

TEST(MatchBuckets, ExactBeforeWildcardWins) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      env.compute(0.001);
      double v = 55;
      c.send(1, 4, &v, 1);
      v = 66;
      c.send(1, 4, &v, 1);
    } else {
      double wild = 0, exact = 0;
      mpi::Request re = c.irecv(0, 4, &exact, 1);
      mpi::Request rw = c.irecv(mpi::kAnySource, mpi::kAnyTag, &wild, 1);
      c.wait(re);
      c.wait(rw);
      env.report("wild", wild);
      env.report("exact", exact);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("exact"), 55);
  EXPECT_DOUBLE_EQ(r.values.at("wild"), 66);
}

TEST(MatchBuckets, ManyDistinctTagsReverseOrder) {
  // The match-queue stress shape: N receives on distinct tags, messages
  // arriving in reverse tag order. Every message must land in its own tag's
  // buffer regardless of posting/arrival order.
  constexpr int kTags = 100;
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      for (int t = kTags - 1; t >= 0; --t) {
        double v = 1000 + t;
        c.send(1, t, &v, 1);
      }
    } else {
      std::vector<double> got(kTags, 0);
      std::vector<mpi::Request> reqs;
      reqs.reserve(kTags);
      for (int t = 0; t < kTags; ++t) reqs.push_back(c.irecv(0, t, &got[t], 1));
      c.waitall(reqs);
      int ok = 1;
      for (int t = 0; t < kTags; ++t) {
        if (got[t] != 1000 + t) ok = 0;
      }
      env.report("ok", ok);
    }
  });
  EXPECT_EQ(r.values.at("ok"), 1);
}

TEST(MatchBuckets, NonPowerOfTwoCommunicatorCollectives) {
  // np = 6 world split into a 5-rank sub-communicator: exercises the
  // non-power-of-two branches of the dissemination/tree collectives, whose
  // fresh-tag-per-call pattern churns the match buckets hardest.
  auto r = mpi::run_job(cfg(6), [](mpi::RankEnv& env) {
    auto& c = env.world();
    double x = c.rank() + 1;
    double sum = 0;
    c.allreduce(&x, &sum, 1, mpi::Op::Sum);
    if (c.rank() == 0) env.report("world_sum", sum);

    auto sub = c.split(c.rank() < 5 ? 0 : 1, c.rank());
    if (c.rank() < 5) {
      double y = c.rank() + 1;
      double subsum = 0;
      sub->allreduce(&y, &subsum, 1, mpi::Op::Sum);
      std::vector<double> all(static_cast<std::size_t>(sub->size()), 0);
      sub->allgather(&y, all.data(), 1);
      double gathered = 0;
      for (double v : all) gathered += v;
      if (sub->rank() == 0) {
        env.report("sub_sum", subsum);
        env.report("sub_gathered", gathered);
      }
    }
    c.barrier();
  });
  EXPECT_DOUBLE_EQ(r.values.at("world_sum"), 21);     // 1+2+...+6
  EXPECT_DOUBLE_EQ(r.values.at("sub_sum"), 15);       // 1+2+...+5
  EXPECT_DOUBLE_EQ(r.values.at("sub_gathered"), 15);
}
