// Tests for the extended MPI API: iprobe, scan, allgatherv, long-message
// broadcast, collective algorithm selection, and the Options parser.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/options.hpp"
#include "mpi/minimpi.hpp"

namespace mpi = cirrus::mpi;
namespace plat = cirrus::plat;
namespace core = cirrus::core;

namespace {
mpi::JobConfig cfg(int np) {
  mpi::JobConfig c;
  c.platform = plat::vayu();
  c.np = np;
  c.name = "ext-test";
  return c;
}
}  // namespace

TEST(Iprobe, SeesBufferedMessage) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      double x = 1;
      c.send(1, 7, &x, 1);
    } else {
      env.compute(0.01);  // let the message land first
      env.report("probe_hit", c.iprobe(0, 7) ? 1 : 0);
      env.report("probe_other_tag", c.iprobe(0, 8) ? 1 : 0);
      env.report("probe_any", c.iprobe(mpi::kAnySource, mpi::kAnyTag) ? 1 : 0);
      double x = 0;
      c.recv(0, 7, &x, 1);
      env.report("probe_after", c.iprobe(0, 7) ? 1 : 0);
    }
  });
  EXPECT_EQ(r.values.at("probe_hit"), 1);
  EXPECT_EQ(r.values.at("probe_other_tag"), 0);
  EXPECT_EQ(r.values.at("probe_any"), 1);
  EXPECT_EQ(r.values.at("probe_after"), 0);
}

class ScanNp : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, ScanNp, ::testing::Values(1, 2, 3, 5, 8, 13),
                         [](const auto& info) { return "np" + std::to_string(info.param); });

TEST_P(ScanNp, InclusivePrefixSum) {
  const int np = GetParam();
  auto r = mpi::run_job(cfg(np), [](mpi::RankEnv& env) {
    auto& c = env.world();
    const double mine = c.rank() + 1.0;
    const double pre = c.scan_one(mine, mpi::Op::Sum);
    const double expect = (c.rank() + 1.0) * (c.rank() + 2.0) / 2.0;  // 1+2+...+(r+1)
    if (pre != expect) env.report("bad" + std::to_string(c.rank()), pre - expect);
  });
  for (const auto& [k, v] : r.values) FAIL() << k << " off by " << v;
}

TEST_P(ScanNp, PrefixMax) {
  const int np = GetParam();
  auto r = mpi::run_job(cfg(np), [np](mpi::RankEnv& env) {
    auto& c = env.world();
    // Values descend, so the prefix max is always rank 0's value.
    const double mine = static_cast<double>(np - c.rank());
    const double pre = c.scan_one(mine, mpi::Op::Max);
    if (pre != static_cast<double>(np)) env.report("bad" + std::to_string(c.rank()), pre);
  });
  for (const auto& [k, v] : r.values) FAIL() << k << "=" << v;
}

TEST(ScanLargeVectors, RendezvousPathGivesExactPrefixSums) {
  auto c = cfg(6);
  c.eager_threshold_bytes = 0;  // force rendezvous for every scan exchange
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    auto& comm = env.world();
    constexpr int kN = 10000;
    std::vector<double> in(kN), out(kN, 0);
    for (int i = 0; i < kN; ++i) {
      in[static_cast<std::size_t>(i)] = comm.rank() + 1.0;  // constant per rank
    }
    comm.scan(in.data(), out.data(), kN, mpi::Op::Sum);
    // Prefix sum of (1, 2, ..., r+1) at every element.
    const double expect = (comm.rank() + 1.0) * (comm.rank() + 2.0) / 2.0;
    double err = 0;
    for (int i = 0; i < kN; ++i) err += std::abs(out[static_cast<std::size_t>(i)] - expect);
    env.report("err" + std::to_string(comm.rank()), err);
  });
  for (int rk = 0; rk < 6; ++rk) EXPECT_EQ(r.values.at("err" + std::to_string(rk)), 0.0);
}

TEST(Allgatherv, VariableBlockSizes) {
  for (const int np : {1, 2, 4, 7}) {
    auto r = mpi::run_job(cfg(np), [np](mpi::RankEnv& env) {
      auto& c = env.world();
      // Rank r contributes r+1 doubles, all equal to r.
      std::vector<std::size_t> counts(static_cast<std::size_t>(np));
      std::size_t total = 0;
      for (int rr = 0; rr < np; ++rr) {
        counts[static_cast<std::size_t>(rr)] = static_cast<std::size_t>(rr + 1) * sizeof(double);
        total += counts[static_cast<std::size_t>(rr)];
      }
      std::vector<double> mine(static_cast<std::size_t>(c.rank()) + 1,
                               static_cast<double>(c.rank()));
      std::vector<double> all(total / sizeof(double), -1.0);
      c.allgatherv_bytes(mine.data(), all.data(), counts);
      std::size_t o = 0;
      double err = 0;
      for (int rr = 0; rr < np; ++rr) {
        for (int i = 0; i <= rr; ++i) err += std::abs(all[o++] - rr);
      }
      env.report("err" + std::to_string(c.rank()), err);
    });
    for (int rr = 0; rr < np; ++rr) {
      EXPECT_EQ(r.values.at("err" + std::to_string(rr)), 0.0) << "np=" << np << " rank " << rr;
    }
  }
}

TEST(BcastLong, ScatterAllgatherPathDeliversCorrectData) {
  auto c = cfg(8);
  c.bcast_long_threshold_bytes = 1024;  // force the van de Geijn path
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    auto& comm = env.world();
    std::vector<double> data(4096, -1.0);
    if (comm.rank() == 3) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = std::sin(0.01 * i);
    }
    comm.bcast(data.data(), data.size(), 3);
    double err = 0;
    for (std::size_t i = 0; i < data.size(); ++i) err += std::abs(data[i] - std::sin(0.01 * i));
    env.report("err" + std::to_string(comm.rank()), err);
  });
  for (int rr = 0; rr < 8; ++rr) EXPECT_EQ(r.values.at("err" + std::to_string(rr)), 0.0);
}

TEST(BcastLong, UnevenSizeTailIsHandled) {
  auto c = cfg(4);
  c.bcast_long_threshold_bytes = 64;
  auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
    auto& comm = env.world();
    std::vector<std::uint8_t> data(1003, 0);  // not divisible by np
    if (comm.rank() == 0) {
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
    }
    comm.bcast(data.data(), data.size(), 0);
    int bad = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      bad += data[i] != static_cast<std::uint8_t>(i * 7);
    }
    env.report("bad" + std::to_string(comm.rank()), bad);
  });
  for (int rr = 0; rr < 4; ++rr) EXPECT_EQ(r.values.at("bad" + std::to_string(rr)), 0.0);
}

TEST(AllgatherAlgo, RingAndRecursiveDoublingAgree) {
  for (const auto algo : {mpi::JobConfig::AllgatherAlgo::Ring,
                          mpi::JobConfig::AllgatherAlgo::RecursiveDoubling}) {
    auto c = cfg(8);
    c.allgather_algo = algo;
    auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
      auto& comm = env.world();
      std::vector<double> mine(16, env.rank());
      std::vector<double> all(static_cast<std::size_t>(16 * comm.size()), -1);
      comm.allgather(mine.data(), all.data(), 16);
      double err = 0;
      for (int rr = 0; rr < comm.size(); ++rr) {
        for (int i = 0; i < 16; ++i) err += std::abs(all[static_cast<std::size_t>(rr * 16 + i)] - rr);
      }
      env.report("err" + std::to_string(env.rank()), err);
    });
    for (int rr = 0; rr < 8; ++rr) EXPECT_EQ(r.values.at("err" + std::to_string(rr)), 0.0);
  }
}

TEST(AllgatherAlgo, RingCostsMoreLatencySteps) {
  // On a latency-dominated network, ring (p-1 rounds) should be slower than
  // recursive doubling (log2 p rounds) for small blocks.
  auto run_with = [](mpi::JobConfig::AllgatherAlgo algo) {
    mpi::JobConfig c;
    c.platform = plat::dcc();
    c.platform.nic.jitter_prob = 0;
    c.np = 16;
    c.max_ranks_per_node = 2;
    c.allgather_algo = algo;
    c.name = "ag-algo";
    auto r = mpi::run_job(c, [](mpi::RankEnv& env) {
      for (int i = 0; i < 5; ++i) {
        env.world().allgather_bytes(nullptr, nullptr, 64);
      }
    });
    return r.elapsed_seconds;
  };
  EXPECT_GT(run_with(mpi::JobConfig::AllgatherAlgo::Ring),
            1.5 * run_with(mpi::JobConfig::AllgatherAlgo::RecursiveDoubling));
}

// --------------------------------------------------------------- options
TEST(Options, ParsesKeysFlagsAndPositionals) {
  // Positionals come before options; a bare word after `--flag` would be
  // consumed as that flag's value (documented grammar).
  const char* argv[] = {"prog", "npb", "extra", "--bench", "CG", "--np", "32", "--execute"};
  core::Options o(8, argv);
  EXPECT_EQ(o.program(), "prog");
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "npb");
  EXPECT_EQ(o.positional()[1], "extra");
  EXPECT_EQ(o.get_or("bench", "?"), "CG");
  EXPECT_EQ(o.get_int("np", 0), 32);
  EXPECT_TRUE(o.has("execute"));
  EXPECT_FALSE(o.has("missing"));
  EXPECT_EQ(o.get_int("missing", 7), 7);
}

TEST(Options, FlagFollowedByOptionIsAFlag) {
  const char* argv[] = {"prog", "--ipm", "--np", "4"};
  core::Options o(4, argv);
  EXPECT_TRUE(o.has("ipm"));
  EXPECT_FALSE(o.get("ipm").has_value());  // no value attached
  EXPECT_EQ(o.get_int("np", 0), 4);
}

TEST(Options, BadIntegerThrows) {
  const char* argv[] = {"prog", "--np", "many"};
  core::Options o(3, argv);
  EXPECT_THROW((void)o.get_int("np", 0), std::invalid_argument);
}

TEST(Options, GetDoubleParses) {
  const char* argv[] = {"prog", "--rtol", "1e-8"};
  core::Options o(3, argv);
  EXPECT_DOUBLE_EQ(o.get_double("rtol", 0), 1e-8);
}
