// The shared JSON writer: escaping, number policy, comma placement — and
// round-trip agreement with jsonlite, the parser next door.
#include "obs/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "obs/jsonlite.hpp"

namespace {

using namespace cirrus::obs;

TEST(JsonEscape, Rfc8259) {
  EXPECT_EQ(jsonw::escape("plain"), "plain");
  EXPECT_EQ(jsonw::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonw::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonw::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(jsonw::escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(jsonw::quote("say \"hi\""), "\"say \\\"hi\\\"\"");
}

TEST(JsonNumber, ShortestRoundTrip) {
  EXPECT_EQ(jsonw::number(0), "0");
  EXPECT_EQ(jsonw::number(2.5), "2.5");
  EXPECT_EQ(jsonw::number(-3), "-3");
  EXPECT_EQ(jsonw::number(1e21), "1e+21");
  // The value must survive a strtod round trip even when 17 digits are
  // needed.
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::strtod(jsonw::number(v).c_str(), nullptr), v);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(jsonw::number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(jsonw::number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(jsonw::number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriter, ObjectsArraysAndCommas) {
  jsonw::Writer w;
  w.begin_object();
  w.key("s").value("x");
  w.key("n").value(4);
  w.key("f").value(true);
  w.key("list").begin_array().value(1).value(2.5).null().end_array();
  w.key("nested").begin_object().key("deep").value("y").end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            R"({"s":"x","n":4,"f":true,"list":[1,2.5,null],"nested":{"deep":"y"}})");
}

TEST(JsonWriter, RawSplicesPreSerialisedJson) {
  jsonw::Writer w;
  w.begin_object().key("blob").raw(R"({"inner":1})").key("after").value(2).end_object();
  EXPECT_EQ(w.str(), R"({"blob":{"inner":1},"after":2})");
}

TEST(JsonWriter, RoundTripsThroughJsonlite) {
  jsonw::Writer w;
  w.begin_object();
  w.key("escaped").value("tab\there \"quoted\"");
  w.key("pi").value(3.141592653589793);
  w.key("rows").begin_array();
  for (int i = 0; i < 3; ++i) {
    w.begin_object().key("i").value(i).key("half").value(i / 2.0).end_object();
  }
  w.end_array();
  w.end_object();

  jsonlite::Value doc;
  std::string error;
  ASSERT_TRUE(jsonlite::parse(w.str(), doc, &error)) << error << "\n" << w.str();
  EXPECT_EQ(doc.find("escaped")->str, "tab\there \"quoted\"");
  EXPECT_EQ(doc.find("pi")->number, 3.141592653589793);
  EXPECT_EQ(doc.find("rows")->array.size(), 3U);
  EXPECT_EQ(doc.find("rows")->array[2].find("half")->number, 1.0);
}

}  // namespace
