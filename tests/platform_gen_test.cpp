// The generation dimension: gen-2020 platform models, name round-trips,
// canonical-key pinning (gen-2012 keys byte-identical to the pre-generation
// grammar), the headline gap-narrowing result, and manifest determinism of
// the ext8 gap suite under --jobs and --lp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/metum/metum.hpp"
#include "bench/registry.hpp"
#include "core/options.hpp"
#include "core/request.hpp"
#include "mpi/minimpi.hpp"
#include "npb/npb.hpp"
#include "platform/platform.hpp"
#include "valid/manifest.hpp"

namespace {

using namespace cirrus;

TEST(PlatformGen, KnownNamesRoundTrip) {
  const auto& names = plat::known_names();
  ASSERT_EQ(names.size(), 5U);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const auto& name : names) {
    const auto p = plat::by_name(name);
    EXPECT_EQ(p.name, name);
    EXPECT_TRUE(p.generation == 2012 || p.generation == 2020) << name;
  }
  EXPECT_EQ(plat::by_name("vayu").generation, 2012);
  EXPECT_EQ(plat::by_name("dcc").generation, 2012);
  EXPECT_EQ(plat::by_name("ec2").generation, 2012);
  EXPECT_EQ(plat::by_name("vayu2020").generation, 2020);
  EXPECT_EQ(plat::by_name("ec2_2020").generation, 2020);
  // Case-insensitive like the rest of the CLI surface.
  EXPECT_EQ(plat::by_name("VAYU2020").name, "vayu2020");

  EXPECT_EQ(plat::generation_platforms(2012).size(), 3U);
  EXPECT_EQ(plat::generation_platforms(2020).size(), 2U);
  EXPECT_EQ(plat::all_platforms().size(), 5U);
  EXPECT_THROW(plat::generation_platforms(2016), std::invalid_argument);

  // study_platforms() is frozen: the 887 committed pins sweep exactly the
  // 2012 trio, so the 2020 models must never leak into it.
  const auto study = plat::study_platforms();
  ASSERT_EQ(study.size(), 3U);
  for (const auto& p : study) EXPECT_EQ(p.generation, 2012) << p.name;
}

TEST(PlatformGen, UnknownNameErrorListsValidNames) {
  try {
    plat::by_name("azure");
    FAIL() << "by_name must throw for unknown platforms";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("azure"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid:"), std::string::npos) << msg;
    for (const auto& name : plat::known_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(PlatformGen, GenerationNameMapsAcrossGenerations) {
  EXPECT_EQ(plat::generation_name("vayu", 2020), "vayu2020");
  EXPECT_EQ(plat::generation_name("ec2", 2020), "ec2_2020");
  EXPECT_EQ(plat::generation_name("vayu2020", 2020), "vayu2020");
  EXPECT_EQ(plat::generation_name("vayu2020", 2012), "vayu");
  EXPECT_EQ(plat::generation_name("ec2_2020", 2012), "ec2");
  EXPECT_EQ(plat::generation_name("dcc", 2012), "dcc");
  EXPECT_THROW(plat::generation_name("dcc", 2020), std::invalid_argument);
  EXPECT_THROW(plat::generation_name("bluegene", 2020), std::invalid_argument);
}

TEST(PlatformGen, Gen2012CanonicalKeyByteIdentical) {
  // The exact canonical key the grammar produced before generations existed.
  // Any change here silently invalidates every cached result and golden.
  const core::RunRequest req;
  EXPECT_EQ(req.canonical_key(),
            "bench=CG ckpt=0 class=S eager=16384 execute=0 horizon=2592000 leaf=4 "
            "mtbf=0 np=8 oversub=1 placement=contig platform=vayu requeue=60 rpn=-1 "
            "sched=heap4 seed=1 storage=nfs topo=crossbar wf-sched=- wf-shape=- "
            "wf-width=- workload=npb");
}

// The headline result of the gap study, asserted directly: at np=64 the
// cloud/HPC ratio of the communication-bound workloads shrinks from gen-2012
// to gen-2020 (EFA-class NIC + placement groups + no HT sharing).
TEST(PlatformGen, GapNarrowsFrom2012To2020) {
  const auto npb_seconds = [](const char* platform, int np) {
    return npb::run_benchmark("CG", npb::Class::B, plat::by_name(platform), np,
                              /*execute=*/false)
        .elapsed_seconds;
  };
  const auto metum_seconds = [](const char* platform, int np) {
    mpi::JobConfig cfg;
    cfg.platform = plat::by_name(platform);
    cfg.np = np;
    cfg.execute = false;
    cfg.traits = metum::traits();
    cfg.name = std::string("metum.") + platform;
    auto r = mpi::run_job(cfg, [](mpi::RankEnv& env) { metum::run(env); });
    return r.values.at("um_warmed_seconds");
  };

  const double cg_2012 = npb_seconds("ec2", 64) / npb_seconds("vayu", 64);
  const double cg_2020 = npb_seconds("ec2_2020", 64) / npb_seconds("vayu2020", 64);
  EXPECT_LT(cg_2020, cg_2012) << "CG gap must narrow 2012 -> 2020";
  EXPECT_GT(cg_2012, 1.0) << "gen-2012 cloud must trail HPC on CG at np=64";

  const double um_2012 = metum_seconds("ec2", 64) / metum_seconds("vayu", 64);
  const double um_2020 = metum_seconds("ec2_2020", 64) / metum_seconds("vayu2020", 64);
  EXPECT_LT(um_2020, um_2012) << "MetUM gap must narrow 2012 -> 2020";
  EXPECT_GT(um_2012, 1.0) << "gen-2012 cloud must trail HPC on MetUM at np=64";
}

std::string run_ext8_manifest(const std::vector<const char*>& extra_argv) {
  const auto* target = bench::find_target("ext8");
  EXPECT_NE(target, nullptr);
  std::vector<const char*> argv = {"ext8", "--quick"};
  argv.insert(argv.end(), extra_argv.begin(), extra_argv.end());
  const core::Options opts(static_cast<int>(argv.size()), argv.data());
  valid::RunReport report;
  report.target = "ext8";
  EXPECT_EQ(target->fn(opts, report), 0);
  valid::ManifestContext ctx;
  ctx.suite = "gap";
  ctx.git_sha = "test";
  ctx.include_nondeterministic = false;
  return valid::manifest_json(ctx, {report}, {});
}

TEST(PlatformGen, GapManifestByteIdenticalAcrossJobs) {
  // Each sweep point is its own deterministic simulation: the thread count
  // of the sweep driver must never change a byte of the manifest.
  const std::string serial = run_ext8_manifest({"--jobs", "1"});
  const std::string threaded = run_ext8_manifest({"--jobs", "8"});
  EXPECT_EQ(serial, threaded);
}

TEST(PlatformGen, GapMetricsStableUnderMultiLp) {
  // Multi-LP runs are bitwise-exact only on jitter-free platforms; on the
  // jittery cloud models a residual same-time tie class bounds the drift
  // (DESIGN.md "Multi-LP determinism"). Gap metrics must stay within that
  // envelope — the fidelity verdicts must not depend on --lp.
  const auto run_report = [](int lp) {
    mpi::set_default_lp(lp);
    const auto* target = bench::find_target("ext8");
    const char* argv[] = {"ext8", "--quick", "--jobs", "1"};
    const core::Options opts(4, argv);
    valid::RunReport report;
    report.target = "ext8";
    EXPECT_EQ(target->fn(opts, report), 0);
    mpi::set_default_lp(1);
    return report;
  };
  const auto lp1 = run_report(1);
  const auto lp4 = run_report(4);
  ASSERT_EQ(lp1.metrics.size(), lp4.metrics.size());
  for (std::size_t i = 0; i < lp1.metrics.size(); ++i) {
    const auto& a = lp1.metrics[i];
    const auto& b = lp4.metrics[i];
    ASSERT_EQ(a.name, b.name);
    ASSERT_EQ(a.platform, b.platform);
    ASSERT_EQ(a.ranks, b.ranks);
    if (a.name.rfind("knee_", 0) == 0) continue;  // threshold metric: compared
                                                  // via the gap ratios below it
    EXPECT_NEAR(b.value, a.value, 0.02 * std::abs(a.value) + 1e-12)
        << a.name << " " << a.platform << " np=" << a.ranks;
  }
}

}  // namespace
