// The content-addressed cache and its key grammar: canonicalisation is
// order-insensitive, every knob is collision-tested (distinct values ->
// distinct keys), LRU eviction holds at capacity, a stored blob equals a
// recomputation byte for byte, and mixed hit/miss traffic is race-free
// (this file runs under the TSan preset).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"

namespace {

using cirrus::core::RunRequest;
using cirrus::serve::ResultCache;

using KVs = std::vector<std::pair<std::string, std::string>>;

TEST(RequestKey, AllKnobsPresentAndSorted) {
  const RunRequest req;
  const auto items = req.items();
  ASSERT_EQ(items.size(), 22U);
  EXPECT_TRUE(std::is_sorted(items.begin(), items.end(),
                             [](const auto& a, const auto& b) { return a.first < b.first; }));
  const std::string key = req.canonical_key();
  for (const auto& [k, v] : items) {
    EXPECT_NE(key.find(k + "=" + v), std::string::npos) << k;
  }
}

TEST(RequestKey, OrderInsensitive) {
  KVs kvs = {{"np", "64"},          {"platform", "ec2"}, {"workload", "npb"},
             {"bench", "CG"},       {"class", "B"},      {"topo", "fattree"},
             {"oversub", "2"},      {"leaf", "8"},       {"placement", "scatter"},
             {"mtbf", "7200"},      {"ckpt", "600"},     {"seed", "9"},
             {"sched", "calendar"}, {"eager", "8192"},   {"rpn", "8"}};
  RunRequest base;
  std::string error;
  ASSERT_TRUE(RunRequest::parse(kvs, base, &error)) << error;

  std::mt19937 rng(7);
  for (int i = 0; i < 20; ++i) {
    std::shuffle(kvs.begin(), kvs.end(), rng);
    RunRequest shuffled;
    ASSERT_TRUE(RunRequest::parse(kvs, shuffled, &error)) << error;
    EXPECT_EQ(shuffled.canonical_key(), base.canonical_key());
    EXPECT_EQ(shuffled.key_hash(), base.key_hash());
  }
}

TEST(RequestKey, ValueNormalisation) {
  // Case, integral-vs-decimal spellings and defaulted knobs all collapse to
  // one canonical key.
  RunRequest a, b;
  std::string error;
  ASSERT_TRUE(RunRequest::parse({{"bench", "cg"}, {"class", "b"}, {"oversub", "2"}}, a, &error))
      << error;
  ASSERT_TRUE(
      RunRequest::parse({{"bench", "CG"}, {"class", "B"}, {"oversub", "2.0"}, {"np", "8"}}, b,
                        &error))
      << error;
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(RequestKey, IrrelevantBenchDoesNotSplitTheCache) {
  RunRequest a, b;
  std::string error;
  ASSERT_TRUE(RunRequest::parse({{"workload", "metum"}, {"bench", "CG"}}, a, &error)) << error;
  ASSERT_TRUE(RunRequest::parse({{"workload", "metum"}, {"bench", "EP"}}, b, &error)) << error;
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
}

TEST(RequestKey, StorageAndWfKnobsCanonicalise) {
  RunRequest a, b;
  std::string error;
  // "s3" is an alias spelling of the object backend.
  ASSERT_TRUE(RunRequest::parse({{"storage", "s3"}}, a, &error)) << error;
  ASSERT_TRUE(RunRequest::parse({{"storage", "Object"}}, b, &error)) << error;
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  // OSU microbenchmarks never touch the filesystem: storage must not split
  // their cache entries.
  RunRequest c, d;
  ASSERT_TRUE(RunRequest::parse({{"workload", "osu"}, {"bench", "bw"}}, c, &error)) << error;
  ASSERT_TRUE(
      RunRequest::parse({{"workload", "osu"}, {"bench", "bw"}, {"storage", "lustre"}}, d, &error))
      << error;
  EXPECT_EQ(c.canonical_key(), d.canonical_key());
  // wf-* knobs are pinned for non-workflow workloads.
  RunRequest e, f;
  ASSERT_TRUE(RunRequest::parse({{"workload", "metum"}}, e, &error)) << error;
  ASSERT_TRUE(RunRequest::parse({{"workload", "metum"}, {"wf-shape", "diamond"}}, f, &error))
      << error;
  EXPECT_EQ(e.canonical_key(), f.canonical_key());
  // Workflows reject fault injection (no checkpoint semantics for DAG tasks).
  RunRequest g;
  EXPECT_FALSE(RunRequest::parse({{"workload", "wf"}, {"mtbf", "3600"}}, g, &error));
}

TEST(RequestKey, GenerationFoldsIntoThePlatformValue) {
  // `{platform=vayu, gen=2020}` and `{platform=vayu2020}` are the same
  // machine: they must canonicalise to one key. And because gen folds into
  // the platform value rather than adding a 23rd pair, every pre-generation
  // gen-2012 key stays byte-identical.
  RunRequest a, b;
  std::string error;
  ASSERT_TRUE(RunRequest::parse({{"platform", "vayu"}, {"gen", "2020"}}, a, &error)) << error;
  ASSERT_TRUE(RunRequest::parse({{"platform", "vayu2020"}}, b, &error)) << error;
  EXPECT_EQ(a.canonical_key(), b.canonical_key());
  EXPECT_EQ(a.resolved_platform(), "vayu2020");
  EXPECT_EQ(a.generation(), 2020);
  EXPECT_EQ(a.items().size(), 22U) << "gen must not add a key pair";

  RunRequest c, d;
  ASSERT_TRUE(RunRequest::parse({{"platform", "ec2"}, {"gen", "2020"}}, c, &error)) << error;
  ASSERT_TRUE(RunRequest::parse({{"platform", "ec2_2020"}}, d, &error)) << error;
  EXPECT_EQ(c.canonical_key(), d.canonical_key());

  // An explicit gen=2012 is the default generation: same key as no gen.
  RunRequest e, f;
  ASSERT_TRUE(RunRequest::parse({{"platform", "vayu"}, {"gen", "2012"}}, e, &error)) << error;
  ASSERT_TRUE(RunRequest::parse({{"platform", "vayu"}}, f, &error)) << error;
  EXPECT_EQ(e.canonical_key(), f.canonical_key());
  EXPECT_EQ(f.generation(), 2012);
}

TEST(RequestKey, GenerationRejectsImpossibleCombinations) {
  RunRequest req;
  std::string error;
  EXPECT_FALSE(RunRequest::parse({{"gen", "2021"}}, req, &error));
  EXPECT_NE(error.find("2012|2020"), std::string::npos) << error;
  // The DCC private cloud was retired: no gen-2020 model exists.
  EXPECT_FALSE(RunRequest::parse({{"platform", "dcc"}, {"gen", "2020"}}, req, &error));
  EXPECT_NE(error.find("no gen-2020"), std::string::npos) << error;
  // Asking for the 2012 generation of an already-2020-qualified name is a
  // contradiction, not a silent downgrade.
  EXPECT_FALSE(RunRequest::parse({{"platform", "vayu2020"}, {"gen", "2012"}}, req, &error));
  EXPECT_NE(error.find("conflicts"), std::string::npos) << error;
}

TEST(RequestKey, EveryKnobChangesTheKey) {
  // Collision test across the full knob space: every legal value of every
  // enum knob, plus representative numeric values, must give distinct keys.
  const RunRequest base;
  std::set<std::string> keys = {base.canonical_key()};
  std::set<std::uint64_t> hashes = {base.key_hash()};
  const auto insert_distinct = [&](const KVs& kvs) {
    RunRequest req;
    std::string error;
    ASSERT_TRUE(RunRequest::parse(kvs, req, &error)) << error;
    EXPECT_TRUE(keys.insert(req.canonical_key()).second)
        << "key collision for " << req.canonical_key();
    EXPECT_TRUE(hashes.insert(req.key_hash()).second)
        << "hash collision for " << req.canonical_key();
  };

  for (const char* p : {"dcc", "ec2", "vayu2020", "ec2_2020"}) {
    insert_distinct({{"platform", p}});
  }
  for (const char* w : {"metum", "chaste"}) insert_distinct({{"workload", w}});
  insert_distinct({{"workload", "osu"}, {"bench", "bw"}});
  insert_distinct({{"workload", "osu"}, {"bench", "lat"}});
  for (const char* b : {"BT", "EP", "FT", "IS", "LU", "MG", "SP"}) {
    insert_distinct({{"bench", b}});
  }
  for (const char* c : {"T", "W", "A", "B", "C"}) insert_distinct({{"class", c}});
  for (const char* t : {"fattree", "vswitch", "pgroups"}) insert_distinct({{"topo", t}});
  for (const char* pl : {"scatter", "pgroup"}) insert_distinct({{"placement", pl}});
  insert_distinct({{"sched", "calendar"}});
  for (const char* np : {"2", "4", "16", "64", "256"}) insert_distinct({{"np", np}});
  for (const char* rpn : {"1", "4", "8"}) insert_distinct({{"rpn", rpn}});
  for (const char* s : {"2", "3", "12345"}) insert_distinct({{"seed", s}});
  insert_distinct({{"execute", "1"}});
  for (const char* e : {"0", "65536"}) insert_distinct({{"eager", e}});
  for (const char* o : {"2", "4.5"}) insert_distinct({{"oversub", o}});
  for (const char* l : {"2", "8"}) insert_distinct({{"leaf", l}});
  for (const char* m : {"3600", "7200"}) insert_distinct({{"mtbf", m}});
  for (const char* ck : {"300", "600"}) insert_distinct({{"ckpt", ck}});
  insert_distinct({{"requeue", "120"}});
  insert_distinct({{"horizon", "86400"}});
  for (const char* s : {"lustre", "object"}) insert_distinct({{"storage", s}});
  insert_distinct({{"workload", "wf"}});
  insert_distinct({{"workload", "wf"}, {"wf-shape", "diamond"}});
  insert_distinct({{"workload", "wf"}, {"wf-shape", "epigenomics"}});
  insert_distinct({{"workload", "wf"}, {"wf-sched", "fifo"}});
  insert_distinct({{"workload", "wf"}, {"wf-width", "12"}});
}

TEST(RequestKey, RejectsUnknownAndMalformed) {
  RunRequest req;
  std::string error;
  EXPECT_FALSE(RunRequest::parse({{"bogus", "1"}}, req, &error));
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(RunRequest::parse({{"np", "zero"}}, req, &error));
  EXPECT_FALSE(RunRequest::parse({{"np", "0"}}, req, &error));
  EXPECT_FALSE(RunRequest::parse({{"platform", "azure"}}, req, &error));
  EXPECT_FALSE(RunRequest::parse({{"bench", "XX"}}, req, &error));
  EXPECT_FALSE(RunRequest::parse({{"topo", "torus"}}, req, &error));
  EXPECT_FALSE(RunRequest::parse({{"mtbf", "-1"}}, req, &error));
}

TEST(ResultCache, HitMissAndOverwrite) {
  ResultCache cache({.capacity = 4, .spill_dir = ""});
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "blob-a");
  const auto got = cache.get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "blob-a");
  cache.put("a", "blob-a2");
  EXPECT_EQ(*cache.get("a"), "blob-a2");
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2U);
  EXPECT_EQ(s.misses, 1U);
  EXPECT_EQ(s.entries, 1U);
}

TEST(ResultCache, LruEvictionAtCapacity) {
  ResultCache cache({.capacity = 3, .spill_dir = ""});
  cache.put("a", "A");
  cache.put("b", "B");
  cache.put("c", "C");
  // Touch "a" so "b" is the least recently used.
  EXPECT_TRUE(cache.get("a").has_value());
  cache.put("d", "D");
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_FALSE(cache.get("b").has_value()) << "LRU entry must be evicted";
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats().entries, 3U);
}

TEST(ResultCache, HitEqualsRecompute) {
  // The heart of the contract: a stored blob is byte-identical to a fresh
  // recomputation of the same request (simulator determinism).
  RunRequest req;
  req.workload = "npb";
  req.bench = "EP";
  req.cls = "S";
  req.np = 4;
  std::string error;
  ASSERT_TRUE(req.validate(&error)) << error;

  const std::string first = cirrus::serve::query_json(req);
  ResultCache cache({.capacity = 8, .spill_dir = ""});
  cache.put(req.canonical_key(), first);

  const auto cached = cache.get(req.canonical_key());
  ASSERT_TRUE(cached.has_value());
  const std::string recomputed = cirrus::serve::query_json(req);
  EXPECT_EQ(*cached, recomputed) << "cache hit must be byte-identical to recompute";
}

TEST(ResultCache, WfHitEqualsRecompute) {
  // Same contract for the workflow branch: a warm hit for a wf what-if must
  // be byte-identical to recomputing the whole DAG simulation.
  RunRequest req;
  req.workload = "wf";
  req.wf_shape = "montage";
  req.wf_sched = "heft";
  req.platform = "ec2";
  req.storage = "object";
  req.np = 8;
  std::string error;
  ASSERT_TRUE(req.validate(&error)) << error;

  const std::string first = cirrus::serve::query_json(req);
  EXPECT_NE(first.find("wf_makespan_s"), std::string::npos);
  EXPECT_NE(first.find("\"storage\""), std::string::npos);
  ResultCache cache({.capacity = 8, .spill_dir = ""});
  cache.put(req.canonical_key(), first);

  const auto cached = cache.get(req.canonical_key());
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, cirrus::serve::query_json(req));
}

TEST(ResultCache, SpillDirectorySurvivesRestart) {
  const std::string dir = ::testing::TempDir() + "serve_cache_spill";
  {
    ResultCache cache({.capacity = 4, .spill_dir = dir});
    cache.put("k1", "persisted-blob");
  }
  ResultCache fresh({.capacity = 4, .spill_dir = dir});
  const auto got = fresh.get("k1");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "persisted-blob");
  EXPECT_EQ(fresh.stats().disk_hits, 1U);
  EXPECT_FALSE(fresh.get("never-stored").has_value());
}

TEST(ResultCache, ConcurrentMixedHitMiss) {
  // Hammer one cache from many threads with overlapping keys: some threads
  // re-put, some get; TSan (serve_ preset filter) checks the locking.
  ResultCache cache({.capacity = 64, .spill_dir = ""});
  constexpr int kThreads = 8;
  constexpr int kOps = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::string key = "key-" + std::to_string((t * 7 + i) % 96);
        if (i % 3 == 0) {
          cache.put(key, "blob-" + key);
        } else if (const auto got = cache.get(key)) {
          // A hit must carry the exact blob stored for that key — never a
          // torn or foreign value.
          ASSERT_EQ(*got, "blob-" + key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = cache.stats();
  EXPECT_GT(s.hits + s.misses, 0U);
  EXPECT_LE(s.entries, 64U);
}

}  // namespace
