// Critical-path blame attribution tests.
//
// Synthetic traces first (hand-built DAGs with known answers), then the
// properties the ISSUE pins: fractions sum to 1 exactly (integer-nanosecond
// partition), the result is byte-identical for any `--jobs` sweep
// parallelism and any `--lp` engine split, and the blame splits of the
// paper's probe configurations are physically sensible (EP is compute-bound;
// CG@64 on DCC blames the GigE fabric over compute).
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/request.hpp"
#include "ipm/trace.hpp"
#include "obs/critpath.hpp"
#include "obs/span.hpp"
#include "serve/service.hpp"

namespace {

using namespace cirrus;
using obs::critpath::Blame;
using obs::critpath::Category;

sim::SimTime cat(const Blame& b, Category c) {
  return b.by_category[static_cast<std::size_t>(c)];
}

ipm::TraceEvent evt(int rank, sim::SimTime b, sim::SimTime e, ipm::TraceEvent::Kind kind,
                    ipm::CallKind call = ipm::CallKind::kCount, std::size_t bytes = 0,
                    int peer = -1) {
  return ipm::TraceEvent{rank, b, e, kind, call, bytes, peer};
}

TEST(Critpath, EmptyTraceIsAllZero) {
  ipm::Trace tr;
  const Blame b = obs::critpath::attribute(tr);
  EXPECT_EQ(b.makespan, 0);
  const auto f = b.fractions();
  for (const double v : f) EXPECT_EQ(v, 0.0);
}

TEST(Critpath, SingleRankPureCompute) {
  ipm::Trace tr;
  tr.add(evt(0, 0, 100, ipm::TraceEvent::Kind::Compute));
  const Blame b = obs::critpath::attribute(tr);
  EXPECT_EQ(b.makespan, 100);
  EXPECT_EQ(b.end_rank, 0);
  EXPECT_EQ(cat(b, Category::Compute), 100);
  EXPECT_EQ(b.fractions()[static_cast<std::size_t>(Category::Compute)], 1.0);
}

TEST(Critpath, FlowJumpChargesFabricAndFollowsSender) {
  // rank 0: compute [0,60], send [60,70].  rank 1: compute [0,10],
  // recv-wait [10,80], compute [80,100].  The message flies 60 -> 80.
  ipm::Trace tr;
  tr.add(evt(0, 0, 60, ipm::TraceEvent::Kind::Compute));
  tr.add(evt(0, 60, 70, ipm::TraceEvent::Kind::Mpi, ipm::CallKind::Send, 512, 1));
  tr.add(evt(1, 0, 10, ipm::TraceEvent::Kind::Compute));
  tr.add(evt(1, 10, 80, ipm::TraceEvent::Kind::Mpi, ipm::CallKind::Recv, 512, 0));
  tr.add(evt(1, 80, 100, ipm::TraceEvent::Kind::Compute));
  tr.add_flow(ipm::FlowEvent{0, 1, 60, 80, 512});
  tr.sort_canonical();

  const Blame b = obs::critpath::attribute(tr);
  EXPECT_EQ(b.makespan, 100);
  EXPECT_EQ(b.end_rank, 1);
  // Path: rank1 compute [80,100] + fabric [60,80] -> jump to rank 0 at 60 ->
  // rank0 compute [0,60]. No wait time: the receiver posted before the wire
  // was the bottleneck.
  EXPECT_EQ(cat(b, Category::Compute), 80);
  EXPECT_EQ(cat(b, Category::FabricSerialization), 20);
  EXPECT_EQ(cat(b, Category::MpiWait), 0);
  ASSERT_EQ(b.edges.size(), 1U);
  EXPECT_EQ(b.edges[0].src_rank, 0);
  EXPECT_EQ(b.edges[0].dst_rank, 1);
  EXPECT_EQ(b.edges[0].crossings, 1U);
  EXPECT_EQ(b.edges[0].bytes, 512U);
  EXPECT_EQ(b.edges[0].flight, 20);
}

TEST(Critpath, BarrierWithoutFlowIsLookahead) {
  ipm::Trace tr;
  tr.add(evt(0, 0, 50, ipm::TraceEvent::Kind::Mpi, ipm::CallKind::Barrier));
  tr.add(evt(0, 50, 100, ipm::TraceEvent::Kind::Compute));
  tr.sort_canonical();
  const Blame b = obs::critpath::attribute(tr);
  EXPECT_EQ(cat(b, Category::Compute), 50);
  EXPECT_EQ(cat(b, Category::BarrierLookahead), 50);
}

TEST(Critpath, StorageSpanSplitsQueueFromService) {
  ipm::Trace tr;
  tr.add(evt(0, 0, 100, ipm::TraceEvent::Kind::Io, ipm::CallKind::kCount, 4096));
  obs::SpanSet spans;
  obs::SpanRecorder rec(&spans, 0);
  rec.record(0, 40, "storage.queue", "nfs");
  rec.record(40, 100, "storage.service", "nfs");

  const Blame with = obs::critpath::attribute(tr, &spans);
  EXPECT_EQ(cat(with, Category::StorageQueue), 40);
  EXPECT_EQ(cat(with, Category::StorageService), 60);

  // Without spans the whole interval is service time.
  const Blame without = obs::critpath::attribute(tr, nullptr);
  EXPECT_EQ(cat(without, Category::StorageQueue), 0);
  EXPECT_EQ(cat(without, Category::StorageService), 100);
}

TEST(Critpath, GapsAreChargedToOther) {
  ipm::Trace tr;
  tr.add(evt(0, 0, 40, ipm::TraceEvent::Kind::Compute));
  tr.add(evt(0, 70, 100, ipm::TraceEvent::Kind::Compute));
  tr.sort_canonical();
  const Blame b = obs::critpath::attribute(tr);
  EXPECT_EQ(cat(b, Category::Compute), 70);
  EXPECT_EQ(cat(b, Category::Other), 30);
}

// ---------------------------------------------------------------------------
// Properties over real jobs.
// ---------------------------------------------------------------------------

struct ProbeResult {
  std::string blame_text;  ///< Blame::format() — the full numeric story
  std::string spans_json;  ///< serialized span tree (rank tracks only)
  Blame blame;
};

ProbeResult run_probe(const core::RunRequest& req, int lp = 1) {
  serve::ExecOptions exec;
  exec.enable_trace = true;
  exec.lp = lp;
  auto out = serve::execute(req, exec);
  ProbeResult r;
  r.blame = obs::critpath::attribute(*out.result.trace, out.result.spans.get());
  r.blame_text = r.blame.format();
  std::ostringstream os;
  bool first = true;
  if (out.result.spans) {
    // Exporters canonicalise before writing; do the same so the multi-LP
    // shard-merge recording order doesn't leak into the comparison.
    obs::SpanSet sorted = *out.result.spans;
    sorted.sort_canonical();
    sorted.write_chrome_events(os, first);
  }
  r.spans_json = os.str();
  return r;
}

void expect_partition(const Blame& b, const std::string& what) {
  // Integer-nanosecond partition: categories sum to the makespan *exactly*.
  const sim::SimTime total =
      std::accumulate(b.by_category.begin(), b.by_category.end(), sim::SimTime{0});
  EXPECT_EQ(total, b.makespan) << what;
  const auto f = b.fractions();
  double sum = 0;
  for (const double v : f) {
    EXPECT_GE(v, 0.0) << what;
    EXPECT_LE(v, 1.0) << what;
    sum += v;
  }
  if (b.makespan > 0) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << what;
  }
}

core::RunRequest paper_request(const std::string& workload, const std::string& bench,
                               const std::string& platform, int np) {
  core::RunRequest req;
  req.workload = workload;
  req.bench = bench;
  req.cls = "A";
  req.platform = platform;
  req.np = np;
  return req;
}

TEST(CritpathProperty, FractionsSumToOneAcrossPaperTargets) {
  const std::vector<core::RunRequest> probes = {
      paper_request("npb", "CG", "dcc", 16),  paper_request("npb", "EP", "vayu", 16),
      paper_request("npb", "FT", "ec2", 16),  paper_request("npb", "IS", "dcc", 16),
      paper_request("npb", "MG", "vayu", 16), paper_request("chaste", "", "dcc", 16),
      paper_request("metum", "", "ec2", 16),  [] {
        core::RunRequest req;
        req.workload = "wf";
        req.wf_shape = "montage";
        req.storage = "object";
        req.platform = "ec2";
        req.np = 4;
        return req;
      }()};
  for (const auto& req : probes) {
    const auto r = run_probe(req);
    expect_partition(r.blame, req.workload + "/" + req.bench + "@" + req.platform);
    EXPECT_GT(r.blame.makespan, 0);
  }
}

TEST(CritpathDeterminism, ByteIdenticalAcrossJobs1And8) {
  // The same probes driven through the sweep driver at --jobs 1 and --jobs 8:
  // every per-point blame text and span tree must be byte-identical (each
  // point is its own single-threaded deterministic simulation).
  const std::vector<core::RunRequest> probes = {paper_request("npb", "CG", "dcc", 8),
                                                paper_request("npb", "FT", "vayu", 8),
                                                paper_request("npb", "EP", "ec2", 8),
                                                paper_request("chaste", "", "dcc", 8)};
  auto sweep = [&](int jobs) {
    return core::run_sweep<ProbeResult>(
        probes.size(), [&](std::size_t i) { return run_probe(probes[i]); }, jobs);
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].blame_text, parallel[i].blame_text) << i;
    EXPECT_EQ(serial[i].spans_json, parallel[i].spans_json) << i;
    EXPECT_FALSE(serial[i].spans_json.empty()) << i;
  }
}

TEST(CritpathDeterminism, ByteIdenticalAcrossLp1And4) {
  for (const auto& req : {paper_request("npb", "CG", "dcc", 16), [] {
         core::RunRequest req;
         req.workload = "wf";
         req.wf_shape = "montage";
         req.platform = "dcc";
         req.np = 8;
         return req;
       }()}) {
    const auto lp1 = run_probe(req, 1);
    const auto lp4 = run_probe(req, 4);
    EXPECT_EQ(lp1.blame_text, lp4.blame_text) << req.workload;
    EXPECT_EQ(lp1.spans_json, lp4.spans_json) << req.workload;
    EXPECT_FALSE(lp1.spans_json.empty()) << req.workload;
  }
}

TEST(CritpathQualitative, Fig4ProbesMatchThePaperStory) {
  // CG@64 on DCC: the GigE fabric out-blames compute (paper SS V-B's scaling
  // collapse). EP@64: embarrassingly parallel, compute > 0.9 everywhere.
  const auto cg = run_probe(paper_request("npb", "CG", "dcc", 64)).blame.fractions();
  EXPECT_GT(cg[static_cast<std::size_t>(Category::FabricSerialization)],
            cg[static_cast<std::size_t>(Category::Compute)]);

  const auto ep = run_probe(paper_request("npb", "EP", "dcc", 64)).blame.fractions();
  EXPECT_GE(ep[static_cast<std::size_t>(Category::Compute)], 0.9);
}

}  // namespace
