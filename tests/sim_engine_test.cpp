// Unit tests for the discrete-event engine: event ordering, virtual time,
// process lifecycle, wake/suspend discipline, deadlock detection and
// determinism.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sim = cirrus::sim;
using sim::SimTime;

TEST(Engine, StartsAtTimeZero) {
  sim::Engine eng;
  EXPECT_EQ(eng.now(), 0);
}

TEST(Engine, EventsRunInTimeOrderRegardlessOfScheduleOrder) {
  sim::Engine eng;
  std::vector<int> order;
  eng.schedule_at(300, [&] { order.push_back(3); });
  eng.schedule_at(100, [&] { order.push_back(1); });
  eng.schedule_at(200, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 300);
}

TEST(Engine, SameTimeEventsRunInScheduleOrder) {
  sim::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) eng.schedule_at(50, [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleInThePastClampsToNow) {
  sim::Engine eng;
  SimTime seen = -1;
  eng.schedule_at(100, [&] {
    eng.schedule_at(5, [&] { seen = eng.now(); });  // "5" is in the past
  });
  eng.run();
  EXPECT_EQ(seen, 100);
}

TEST(Engine, ProcessAdvanceMovesVirtualTime) {
  sim::Engine eng;
  SimTime t_mid = -1, t_end = -1;
  eng.spawn("p", [&](sim::Process& self) {
    self.advance(1000);
    t_mid = eng.now();
    self.advance(500);
    t_end = eng.now();
  });
  eng.run();
  EXPECT_EQ(t_mid, 1000);
  EXPECT_EQ(t_end, 1500);
}

TEST(Engine, AdvanceZeroAndNegativeAreInstant) {
  sim::Engine eng;
  eng.spawn("p", [&](sim::Process& self) {
    self.advance(0);
    EXPECT_EQ(eng.now(), 0);
    self.advance(-5);
    EXPECT_EQ(eng.now(), 0);
  });
  eng.run();
}

TEST(Engine, TwoProcessesInterleaveByVirtualTime) {
  sim::Engine eng;
  std::vector<std::string> log;
  eng.spawn("a", [&](sim::Process& self) {
    self.advance(10);
    log.push_back("a@10");
    self.advance(20);  // -> 30
    log.push_back("a@30");
  });
  eng.spawn("b", [&](sim::Process& self) {
    self.advance(15);
    log.push_back("b@15");
    self.advance(30);  // -> 45
    log.push_back("b@45");
  });
  eng.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a@10", "b@15", "a@30", "b@45"}));
}

TEST(Engine, SuspendThenWakeResumesAtWakeTime) {
  sim::Engine eng;
  SimTime resumed_at = -1;
  sim::Process& p = eng.spawn("sleeper", [&](sim::Process& self) {
    self.suspend();
    resumed_at = eng.now();
  });
  eng.schedule_at(777, [&] { eng.wake(p); });
  eng.run();
  EXPECT_EQ(resumed_at, 777);
}

TEST(Engine, WakeAtFutureTime) {
  sim::Engine eng;
  SimTime resumed_at = -1;
  sim::Process& p = eng.spawn("sleeper", [&](sim::Process& self) {
    self.suspend();
    resumed_at = eng.now();
  });
  eng.schedule_at(10, [&] { eng.wake_at(p, 500); });
  eng.run();
  EXPECT_EQ(resumed_at, 500);
}

TEST(Engine, DeadlockIsDetectedAndNamed) {
  sim::Engine eng;
  eng.spawn("stuck-one", [](sim::Process& self) { self.suspend(); });
  try {
    eng.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("stuck-one"), std::string::npos);
  }
}

TEST(Engine, NoDeadlockWhenAllProcessesFinish) {
  sim::Engine eng;
  for (int i = 0; i < 5; ++i) {
    eng.spawn("p" + std::to_string(i), [](sim::Process& self) { self.advance(100); });
  }
  EXPECT_NO_THROW(eng.run());
}

TEST(Engine, ExceptionInProcessBodyPropagatesFromRun) {
  sim::Engine eng;
  eng.spawn("thrower", [](sim::Process&) { throw std::runtime_error("app failure"); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, SpawnDuringRunWorks) {
  sim::Engine eng;
  SimTime child_done = -1;
  eng.spawn("parent", [&](sim::Process& self) {
    self.advance(100);
    eng.spawn("child", [&](sim::Process& c) {
      c.advance(50);
      child_done = eng.now();
    });
    self.advance(10);
  });
  eng.run();
  EXPECT_EQ(child_done, 150);
}

TEST(Engine, ProcessPidsAreSequential) {
  sim::Engine eng;
  auto& a = eng.spawn("a", [](sim::Process&) {});
  auto& b = eng.spawn("b", [](sim::Process&) {});
  EXPECT_EQ(a.pid(), 0);
  EXPECT_EQ(b.pid(), 1);
  EXPECT_EQ(eng.process_count(), 2u);
  eng.run();
}

TEST(Engine, ManyProcessesManySteps) {
  sim::Engine eng;
  constexpr int kProcs = 64;
  constexpr int kSteps = 100;
  std::vector<SimTime> final_time(kProcs, -1);
  for (int i = 0; i < kProcs; ++i) {
    eng.spawn("w" + std::to_string(i), [&, i](sim::Process& self) {
      for (int s = 0; s < kSteps; ++s) self.advance(i + 1);
      final_time[i] = eng.now();
    });
  }
  eng.run();
  for (int i = 0; i < kProcs; ++i) {
    EXPECT_EQ(final_time[i], static_cast<SimTime>(i + 1) * kSteps);
  }
}

TEST(Engine, EventCountIsTracked) {
  sim::Engine eng;
  eng.schedule_at(1, [] {});
  eng.schedule_at(2, [] {});
  eng.run();
  EXPECT_EQ(eng.events_processed(), 2u);
}

// Determinism: the same program produces bit-identical event counts, times
// and RNG draws across runs.
TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine::Options opts;
    opts.seed = seed;
    sim::Engine eng(opts);
    std::vector<SimTime> trace;
    for (int i = 0; i < 8; ++i) {
      eng.spawn("p" + std::to_string(i), [&, i](sim::Process& self) {
        for (int s = 0; s < 20; ++s) {
          const double jitter = eng.rng().exponential(100.0);
          self.advance(static_cast<SimTime>(jitter) + i);
          trace.push_back(eng.now());
        }
      });
    }
    eng.run();
    return trace;
  };
  const auto t1 = run_once(42);
  const auto t2 = run_once(42);
  const auto t3 = run_once(43);
  EXPECT_EQ(t1, t2);
  EXPECT_NE(t1, t3);
}
