// Unit tests for the switch-fabric topology subsystem: builders, static
// routing, placement policies, the Network fabric stage, and end-to-end
// equivalences (ideal crossbar == legacy NIC-only model; vSwitch backplane
// queueing == legacy per-NIC RX queueing).
#include "topo/topo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/network.hpp"
#include "npb/npb.hpp"

namespace topo = cirrus::topo;
namespace net = cirrus::net;
namespace plat = cirrus::plat;
namespace sim = cirrus::sim;
namespace mpi = cirrus::mpi;
namespace npb = cirrus::npb;

namespace {

plat::Platform quiet(plat::Platform p) {
  p.nic.jitter_prob = 0.0;  // deterministic costs for exact assertions
  return p;
}

topo::TopoSpec fattree(int radix, double oversub) {
  topo::TopoSpec s;
  s.kind = topo::Kind::FatTree;
  s.leaf_radix = radix;
  s.oversubscription = oversub;
  return s;
}

}  // namespace

TEST(Topology, CrossbarHasNoLinksAndEmptyRoutes) {
  const auto t = topo::Topology::build(topo::TopoSpec{}, plat::vayu().nic, 8);
  EXPECT_TRUE(t.links().empty());
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) EXPECT_EQ(t.route(s, d).n, 0);
  }
}

TEST(Topology, RoutesAreDeterministicAcrossBuilds) {
  const auto spec = fattree(4, 2.0);
  const auto a = topo::Topology::build(spec, plat::vayu().nic, 16);
  const auto b = topo::Topology::build(spec, plat::vayu().nic, 16);
  ASSERT_EQ(a.nodes(), b.nodes());
  for (int s = 0; s < a.nodes(); ++s) {
    for (int d = 0; d < a.nodes(); ++d) {
      const auto ra = a.route(s, d);
      const auto rb = b.route(s, d);
      ASSERT_EQ(ra.n, rb.n) << s << "->" << d;
      for (int h = 0; h < ra.n; ++h) EXPECT_EQ(ra.links[h], rb.links[h]) << s << "->" << d;
    }
  }
}

TEST(Topology, FatTreeRoutesStayInsideLeafWhenPossible) {
  const auto t = topo::Topology::build(fattree(4, 2.0), plat::vayu().nic, 8);
  ASSERT_EQ(t.groups(), 2);
  ASSERT_EQ(t.uplinks_per_leaf(), 2);
  EXPECT_EQ(t.route(0, 3).n, 0);  // same leaf: non-blocking leaf switch
  const auto r = t.route(0, 5);   // cross-leaf: up + down hop
  ASSERT_EQ(r.n, 2);
  for (int h = 0; h < r.n; ++h) {
    ASSERT_GE(r.links[h], 0);
    ASSERT_LT(r.links[h], static_cast<int>(t.links().size()));
  }
}

TEST(Topology, FatTreeStaticRoutingIsDestinationHashed) {
  // A statically routed fat-tree resolves the spine plane by destination:
  // flows from *different* leaves towards one node use the same plane index,
  // so incast converges on a single downlink.
  const auto t = topo::Topology::build(fattree(4, 1.0), plat::vayu().nic, 12);
  ASSERT_EQ(t.groups(), 3);
  const int dst = 0;
  const auto from_leaf1 = t.route(4, dst);
  const auto from_leaf2 = t.route(8, dst);
  ASSERT_EQ(from_leaf1.n, 2);
  ASSERT_EQ(from_leaf2.n, 2);
  EXPECT_EQ(from_leaf1.links[1], from_leaf2.links[1]);  // shared downlink
  EXPECT_NE(from_leaf1.links[0], from_leaf2.links[0]);  // distinct uplinks
}

TEST(Topology, ScatteredPlacementIsDeterministicPermutation) {
  const auto t = topo::Topology::build(fattree(4, 1.0), plat::vayu().nic, 8);
  const auto a = topo::place_nodes(t, topo::Placement::Scattered, 8, 7);
  const auto b = topo::place_nodes(t, topo::Placement::Scattered, 8, 7);
  EXPECT_EQ(a, b);  // same seed, same map

  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);  // bijection

  // Logical neighbours land on different leaves — the point of scattering.
  EXPECT_NE(t.group_of(a[0]), t.group_of(a[1]));
}

TEST(Topology, ContiguousPlacementIsIdentity) {
  const auto t = topo::Topology::build(fattree(4, 1.0), plat::vayu().nic, 8);
  const auto m = topo::place_nodes(t, topo::Placement::Contiguous, 8, 7);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(m[static_cast<std::size_t>(i)], i);
}

TEST(NetworkFabric, CrossbarIsBitIdenticalToLegacyNicOnlyModel) {
  const auto p = quiet(plat::ec2());
  sim::Engine e1, e2;
  net::Network legacy(e1, p, 4, 9);
  net::Network fabric(e2, p, 4, 9);
  auto t = std::make_shared<topo::Topology>(
      topo::Topology::build(topo::TopoSpec{}, p.nic, 4));
  fabric.set_topology(t, topo::place_nodes(*t, topo::Placement::Scattered, 4, 9));

  const int pairs[][2] = {{0, 1}, {2, 3}, {1, 0}, {0, 2}, {3, 0}, {0, 1}};
  for (const auto& pr : pairs) {
    for (const std::size_t bytes : {0UL, 1024UL, 1UL << 20}) {
      const auto a = legacy.transfer(pr[0], pr[1], bytes);
      const auto b = fabric.transfer(pr[0], pr[1], bytes);
      EXPECT_EQ(a.arrival, b.arrival);
      EXPECT_EQ(a.sender_free, b.sender_free);
    }
  }
  EXPECT_TRUE(fabric.link_stats().empty());  // nothing to meter
}

TEST(NetworkFabric, VSwitchBackplaneMatchesLegacyRxQueueingOnIncast) {
  // With the backplane at NIC speed and zero hop latency, per-link FIFO
  // queueing must reproduce the legacy per-NIC RX-port serialisation
  // exactly: N->1 arrivals spaced one serialisation time apart.
  auto p = quiet(plat::ec2());
  p.nic.incast_penalty = 1.0;  // isolate FIFO queueing in both models
  sim::Engine e1, e2;
  net::Network legacy(e1, p, 5, 1);
  net::Network fabric(e2, p, 5, 1);
  topo::TopoSpec spec;
  spec.kind = topo::Kind::VSwitch;
  spec.backplane_Bps = p.nic.bandwidth_Bps;
  spec.hop_latency_us = 0.0;
  auto t = std::make_shared<topo::Topology>(topo::Topology::build(spec, p.nic, 5));
  fabric.set_topology(t, {});

  const std::size_t bytes = 1 << 20;
  for (int src = 0; src < 4; ++src) {  // 4-way incast into node 4
    const auto a = legacy.transfer(src, 4, bytes);
    const auto b = fabric.transfer(src, 4, bytes);
    EXPECT_EQ(a.arrival, b.arrival) << "src " << src;
  }
  const auto& s = fabric.link_stats().at(0);
  EXPECT_EQ(s.transfers, 4U);
  EXPECT_EQ(s.bytes, 4 * bytes);
}

TEST(NetworkFabric, OversubscribedUplinkQueuesCrossLeafFlows) {
  // Two leaves of two nodes, one uplink per leaf (2:1). Two simultaneous
  // cross-leaf flows from leaf0 share leaf0's only uplink: the second is
  // delayed a full serialisation time even though its NIC ports are idle.
  const auto p = quiet(plat::vayu());
  sim::Engine eng;
  net::Network n(eng, p, 4, 1);
  auto t = std::make_shared<topo::Topology>(
      topo::Topology::build(fattree(2, 2.0), p.nic, 4));
  ASSERT_EQ(t->uplinks_per_leaf(), 1);
  n.set_topology(t, {});

  const std::size_t bytes = 1 << 20;
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  const auto a = n.transfer(0, 2, bytes);
  const auto b = n.transfer(1, 3, bytes);  // distinct NICs, shared uplink
  EXPECT_NEAR(sim::to_seconds(b.arrival) - sim::to_seconds(a.arrival), busy, 1e-6);

  const auto& up = n.link_stats().at(0);  // leaf0.up0
  EXPECT_EQ(up.transfers, 2U);
  EXPECT_GT(up.queued, 0);
}

TEST(NetworkFabric, LinkFaultHookDegradesRoutedBandwidth) {
  const auto p = quiet(plat::vayu());
  const std::size_t bytes = 8 << 20;
  topo::TopoSpec spec;
  spec.kind = topo::Kind::VSwitch;
  spec.hop_latency_us = 0.0;

  const auto arrival_with = [&](net::LinkFactorFn bw) {
    sim::Engine eng;
    net::Network n(eng, p, 2, 1);
    auto t = std::make_shared<topo::Topology>(topo::Topology::build(spec, p.nic, 2));
    n.set_topology(t, {});
    if (bw) n.set_link_fault_hooks(std::move(bw), nullptr);
    return sim::to_seconds(n.transfer(0, 1, bytes).arrival);
  };
  const double nominal = arrival_with(nullptr);
  const double degraded = arrival_with([](int, double) { return 0.5; });
  const double busy = static_cast<double>(bytes) / p.nic.bandwidth_Bps;
  // Half-speed backplane: the fabric tail, not the RX port, bounds arrival.
  EXPECT_NEAR(degraded - nominal, busy, 1e-6);
}

TEST(TopoJob, ExplicitCrossbarMatchesDeterminismGoldens) {
  // The same constants as determinism_golden_test: an explicitly requested
  // crossbar with a scattered placement must be byte-identical to the
  // default configuration (placement is meaningless on a crossbar).
  const auto& cg = npb::benchmark("CG");
  auto cfg = npb::make_job(cg, npb::Class::T, plat::by_name("dcc"), 4, /*execute=*/true, 1);
  cfg.topology.kind = topo::Kind::Crossbar;
  cfg.placement = topo::Placement::Scattered;
  const auto r =
      mpi::run_job(cfg, [&cg](mpi::RankEnv& env) { cg.fn(env, npb::Class::T); });
  EXPECT_EQ(r.elapsed_seconds, 0.023827264000000001);
  EXPECT_EQ(r.events_processed, 15479U);
}

TEST(TopoJob, FatTreeCongestionHurtsAlltoallMoreThanStencil) {
  // 16 ranks over 4 nodes, two leaves, one uplink each (2:1). FT's
  // all-to-all crosses the leaves every exchange; LU's pencil neighbours
  // mostly stay inside a leaf.
  const auto run = [](const char* bench, topo::Kind kind) {
    const auto& info = npb::benchmark(bench);
    auto cfg = npb::make_job(info, npb::Class::A, plat::vayu(), 16, /*execute=*/false, 1);
    cfg.max_ranks_per_node = 4;
    cfg.topology = topo::TopoSpec{};
    cfg.topology.kind = kind;
    cfg.topology.leaf_radix = 2;
    cfg.topology.oversubscription = 2.0;
    return mpi::run_job(cfg, [&info](mpi::RankEnv& env) { info.fn(env, npb::Class::A); })
        .elapsed_seconds;
  };
  const double ft_slow = run("FT", topo::Kind::FatTree) / run("FT", topo::Kind::Crossbar);
  const double lu_slow = run("LU", topo::Kind::FatTree) / run("LU", topo::Kind::Crossbar);
  EXPECT_GT(ft_slow, 1.0);
  EXPECT_GT(ft_slow, lu_slow);
}

TEST(TopoJob, FabricFaultHooksSlowRoutedJobs) {
  // The per-link generalisation of the NIC fault hooks, end to end: a
  // quartered backplane must stretch a communication-heavy job.
  const auto& ft = npb::benchmark("FT");
  const auto run = [&ft](net::LinkFactorFn bw) {
    auto cfg = npb::make_job(ft, npb::Class::W, plat::vayu(), 8, /*execute=*/false, 1);
    cfg.max_ranks_per_node = 2;  // 4 nodes
    cfg.topology.kind = topo::Kind::VSwitch;
    cfg.faults.fabric_bw_factor = std::move(bw);
    return mpi::run_job(cfg, [&ft](mpi::RankEnv& env) { ft.fn(env, npb::Class::W); })
        .elapsed_seconds;
  };
  const double nominal = run(nullptr);
  const double degraded = run([](int, double) { return 0.25; });
  EXPECT_GT(degraded, nominal * 1.01);
}

TEST(TopoJob, ResultExportsTopologyAndLinkStats) {
  const auto& ft = npb::benchmark("FT");
  auto cfg = npb::make_job(ft, npb::Class::W, plat::vayu(), 8, /*execute=*/false, 1);
  cfg.max_ranks_per_node = 2;  // 4 nodes
  cfg.topology = fattree(2, 1.0);
  const auto r = mpi::run_job(cfg, [&ft](mpi::RankEnv& env) { ft.fn(env, npb::Class::W); });
  ASSERT_NE(r.topology, nullptr);
  ASSERT_EQ(r.link_stats.size(), r.topology->links().size());
  std::uint64_t transfers = 0;
  for (const auto& s : r.link_stats) transfers += s.transfers;
  EXPECT_GT(transfers, 0U);  // cross-leaf traffic was metered

  cfg.topology = topo::TopoSpec{};  // crossbar: fabric exists, nothing metered
  const auto r2 = mpi::run_job(cfg, [&ft](mpi::RankEnv& env) { ft.fn(env, npb::Class::W); });
  ASSERT_NE(r2.topology, nullptr);
  EXPECT_TRUE(r2.link_stats.empty());
}
