// Tests for the cloud substrates: provisioning, spot market, ARRIVE-F
// prediction and the cloud-bursting batch scheduler.
#include "cloud/cloud.hpp"
#include "cloud/packaging.hpp"

#include <gtest/gtest.h>

#include "apps/metum/metum.hpp"
#include "npb/npb.hpp"

#include <memory>

namespace cloud = cirrus::cloud;
namespace plat = cirrus::plat;
namespace npb = cirrus::npb;

// ----------------------------------------------------------- provisioning
TEST(Provisioner, CatalogHasThePapersInstance) {
  const auto& t = cloud::instance_type("cc1.4xlarge");
  EXPECT_EQ(t.phys_cores, 8);
  EXPECT_EQ(t.hw_threads, 16);
  EXPECT_NEAR(t.hourly_usd, 1.60, 0.01);
  EXPECT_THROW(cloud::instance_type("p5.48xlarge"), std::invalid_argument);
}

TEST(Provisioner, BuildsClusterPlatform) {
  cloud::Provisioner prov(7);
  const auto c = prov.provision("cc1.4xlarge", 4, /*placement_group=*/true);
  EXPECT_EQ(c.platform.nodes, 4);
  EXPECT_EQ(c.platform.hw_threads_per_node, 16);
  EXPECT_GT(c.ready_after_s, 10.0);    // instances take time to boot
  EXPECT_LT(c.ready_after_s, 1200.0);
  EXPECT_NEAR(c.hourly_usd, 6.40, 0.01);
}

TEST(Provisioner, NoPlacementGroupDegradesNetwork) {
  cloud::Provisioner prov(7);
  const auto pg = prov.provision("cc1.4xlarge", 4, true);
  const auto no_pg = prov.provision("cc1.4xlarge", 4, false);
  EXPECT_LT(no_pg.platform.nic.bandwidth_Bps, 0.5 * pg.platform.nic.bandwidth_Bps);
  EXPECT_GT(no_pg.platform.nic.latency_us, 2.0 * pg.platform.nic.latency_us);
}

TEST(Provisioner, DeterministicPerSeed) {
  const auto a = cloud::Provisioner(3).provision("cc1.4xlarge", 8, true);
  const auto b = cloud::Provisioner(3).provision("cc1.4xlarge", 8, true);
  EXPECT_DOUBLE_EQ(a.ready_after_s, b.ready_after_s);
}

TEST(Provisioner, ZeroInstancesRejected) {
  cloud::Provisioner prov(1);
  EXPECT_THROW(prov.provision("cc1.4xlarge", 0, true), std::invalid_argument);
}

// ------------------------------------------------------------ spot market
TEST(SpotMarket, PricesStayInBand) {
  cloud::SpotMarket m({}, 11);
  for (double t = 0; t < 7 * 86400; t += 1800) {
    const double p = m.price_at(t);
    EXPECT_GE(p, 0.06 - 1e-12);
    EXPECT_LE(p, 1.60 + 1e-12);
  }
}

TEST(SpotMarket, MeanRevertsToConfiguredMean) {
  cloud::SpotMarket m({}, 13);
  double sum = 0;
  int n = 0;
  for (double t = 0; t < 30 * 86400; t += 900) {
    sum += m.price_at(t);
    ++n;
  }
  EXPECT_NEAR(sum / n, 0.60, 0.12);
}

TEST(SpotMarket, HighBidAvoidsInterruption) {
  cloud::SpotMarket m({}, 17);
  EXPECT_LT(m.next_interruption(0, 1.60, 86400), 0);  // bid at on-demand: safe
}

TEST(SpotMarket, LowBidGetsInterrupted) {
  cloud::SpotMarket m({}, 17);
  const double t = m.next_interruption(0, 0.30, 30 * 86400);
  EXPECT_GE(t, 0);  // well below the mean: interruption is near-certain
}

TEST(SpotMarket, CostIntegratesPriceOverTime) {
  cloud::SpotMarket m({}, 19);
  const double c1 = m.cost(0, 3600, 1);
  EXPECT_NEAR(c1, 0.60, 0.35);  // ~1 instance-hour near the mean price
  EXPECT_NEAR(m.cost(0, 3600, 4), 4 * c1, 1e-9);
}

TEST(SpotRun, HighBidRunsUninterrupted) {
  cloud::SpotMarket m({}, 23);
  const auto r = cloud::run_on_spot(m, 0, 3600, /*bid=*/1.60, 900, 2, 1.60);
  EXPECT_EQ(r.interruptions, 0);
  EXPECT_NEAR(r.finish_s, 3600, 1e-9);
  EXPECT_LT(r.cost_usd, 1.60 * 2);  // spot is cheaper than on-demand
}

TEST(SpotRun, LowBidGetsInterruptedButFinishes) {
  cloud::SpotMarket m({}, 23);
  const auto r = cloud::run_on_spot(m, 0, 4 * 3600, /*bid=*/0.5, 600, 2, 1.60);
  EXPECT_GT(r.interruptions, 0);
  EXPECT_GT(r.finish_s, 4 * 3600);  // interruptions stretch the makespan
  EXPECT_GT(r.cost_usd, 0);
}

TEST(SpotRun, TighterCheckpointsLoseLessWork) {
  const auto coarse = cloud::run_on_spot(*std::make_unique<cloud::SpotMarket>(
                                             cloud::SpotMarket::Options{}, 29),
                                         0, 6 * 3600, 0.5, 1800, 1, 1.60);
  const auto fine = cloud::run_on_spot(*std::make_unique<cloud::SpotMarket>(
                                           cloud::SpotMarket::Options{}, 29),
                                       0, 6 * 3600, 0.5, 300, 1, 1.60);
  EXPECT_LE(fine.finish_s, coarse.finish_s);
}

TEST(SpotMarket, NextAvailableFindsCheapWindow) {
  cloud::SpotMarket m({}, 31);
  const double t = m.next_available(0, 0.60, 7 * 86400);
  EXPECT_GE(t, 0);
  EXPECT_LE(m.price_at(t), 0.60);
}

TEST(SpotMarket, NextInterruptionDeterministicPerSeed) {
  // The fault layer replays interruption times into FaultSchedules: two
  // markets with the same seed must yield the identical sequence.
  cloud::SpotMarket a({}, 23);
  cloud::SpotMarket b({}, 23);
  double ta = 0;
  double tb = 0;
  for (int i = 0; i < 8 && ta >= 0; ++i) {
    ta = a.next_interruption(ta + 60, 0.55, 30 * 86400);
    tb = b.next_interruption(tb + 60, 0.55, 30 * 86400);
    EXPECT_DOUBLE_EQ(ta, tb);
  }
}

TEST(SpotMarket, QueryOrderDoesNotPerturbPrices) {
  // Prices are a pure function of (seed, t): probing one market heavily must
  // not shift it relative to an untouched twin.
  cloud::SpotMarket a({}, 37);
  cloud::SpotMarket b({}, 37);
  (void)a.next_interruption(0, 0.5, 7 * 86400);
  (void)a.next_available(3 * 86400, 0.5, 7 * 86400);
  EXPECT_DOUBLE_EQ(a.price_at(5 * 86400), b.price_at(5 * 86400));
}

TEST(SpotRun, AnalyticAccountingFieldsFilled) {
  // The analytic path must report the same accounting fields the simulated
  // fault::run_on_spot path does, so ext4 can print them side by side.
  cloud::SpotMarket m({}, 23);
  const auto r = cloud::run_on_spot(m, 0, 4 * 3600, /*bid=*/0.5, 600, 2, 1.60);
  EXPECT_EQ(r.attempts, r.interruptions + 1);
  EXPECT_GE(r.lost_work_s, 0.0);
  EXPECT_LE(r.lost_work_s, 600.0 * r.interruptions + 1e-9);  // ckpt bounds it
  EXPECT_FALSE(r.finished_on_demand);
  EXPECT_NEAR(r.on_demand_s, 0.0, 1e-12);
}

TEST(Provisioner, OpenStackPresetExists) {
  // The paper's stated future work: burst onto local OpenStack resources.
  const auto& t = cloud::instance_type("openstack.kvm8");
  EXPECT_EQ(t.hourly_usd, 0.0);
  EXPECT_FALSE(t.base.nic.half_duplex);
  cloud::Provisioner prov(2);
  const auto c = prov.provision("openstack.kvm8", 6, false);
  EXPECT_EQ(c.platform.nodes, 6);
  EXPECT_NEAR(c.hourly_usd, 0.0, 1e-12);
}

// ----------------------------------------------------------------- ARRIVE-F
TEST(ArriveF, PredictsDccToVayuSpeedupForComputeBoundJob) {
  // EP is compute bound: the prediction should be ~ the clock ratio.
  auto prof = npb::run_benchmark("EP", npb::Class::A, plat::dcc(), 8, /*execute=*/false);
  const auto pred = cloud::predict_runtime(prof.ipm, plat::dcc(), plat::vayu(), 8, -1, -1,
                                           npb::benchmark("EP").traits);
  const double actual =
      npb::run_benchmark("EP", npb::Class::A, plat::vayu(), 8, false).elapsed_seconds;
  EXPECT_NEAR(pred.seconds, actual, 0.25 * actual);
}

TEST(ArriveF, PredictionErrorBoundedForCommBoundJob) {
  // Alltoall-dominated IS moving to the half-duplex DCC vSwitch is the
  // hardest case: the per-message repricing cannot see queueing effects, so
  // the bound is loose — but the prediction must still be the right order
  // of magnitude and in the right direction (slower than on Vayu).
  auto prof = npb::run_benchmark("IS", npb::Class::A, plat::vayu(), 16, /*execute=*/false);
  const auto pred = cloud::predict_runtime(prof.ipm, plat::vayu(), plat::dcc(), 16, -1, -1,
                                           npb::benchmark("IS").traits);
  const double on_vayu =
      npb::run_benchmark("IS", npb::Class::A, plat::vayu(), 16, false).elapsed_seconds;
  const double actual =
      npb::run_benchmark("IS", npb::Class::A, plat::dcc(), 16, false).elapsed_seconds;
  EXPECT_GT(pred.seconds, on_vayu);            // predicts a slowdown
  EXPECT_GT(pred.seconds, 0.2 * actual);       // right order of magnitude
  EXPECT_LT(pred.seconds, 3.0 * actual);
}

TEST(ArriveF, CloudSlowdownRanksWorkloads) {
  // A communication-bound job must look like a worse cloud candidate than a
  // compute-bound one (the paper's workload-classification idea).
  auto ep = npb::run_benchmark("EP", npb::Class::A, plat::vayu(), 16, false);
  auto is = npb::run_benchmark("IS", npb::Class::A, plat::vayu(), 16, false);
  const double ep_slow = cloud::cloud_slowdown(ep.ipm, plat::vayu(), plat::ec2(), 16,
                                               npb::benchmark("EP").traits);
  const double is_slow = cloud::cloud_slowdown(is.ipm, plat::vayu(), plat::ec2(), 16,
                                               npb::benchmark("IS").traits);
  EXPECT_GT(is_slow, ep_slow);
}

// ---------------------------------------------------------------- packaging
TEST(Packaging, PaperEnvironmentPackagesAndSizes) {
  const auto env = cloud::paper_environment();
  EXPECT_TRUE(env.has("metum"));
  EXPECT_TRUE(env.has("chaste"));
  EXPECT_GT(env.total_mb(), 3000);
  const auto img = cloud::package_environment(env, plat::vayu());
  EXPECT_GT(img.size_mb, env.total_mb());  // includes the base OS
  EXPECT_GT(img.build_seconds, 30);        // rsync of /apps takes real time
}

TEST(Packaging, LoadReplacesModuleVersions) {
  cloud::Environment env;
  env.load(cloud::Module{"openmpi", "1.4.3", 250});
  env.load(cloud::Module{"openmpi", "1.6.0", 260});
  ASSERT_EQ(env.modules.size(), 1u);
  EXPECT_EQ(env.modules[0].version, "1.6.0");
}

TEST(Packaging, Sse4BuildFailsOffVayu) {
  // The paper's one reported barrier: Vayu-tuned binaries would not run
  // elsewhere until rebuilt with portable switches.
  const auto img = cloud::package_environment(cloud::paper_environment(), plat::vayu());
  EXPECT_NO_THROW(cloud::deploy_image(img, plat::vayu()));
  try {
    cloud::deploy_image(img, plat::dcc());
    FAIL() << "expected IncompatibleIsaError";
  } catch (const cloud::IncompatibleIsaError& e) {
    EXPECT_NE(std::string(e.what()).find("sse4.2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("dcc"), std::string::npos);
  }
  EXPECT_THROW(cloud::deploy_image(img, plat::ec2()), cloud::IncompatibleIsaError);
}

TEST(Packaging, PortableRebuildDeploysEverywhere) {
  const auto env = cloud::rebuild_portable(cloud::paper_environment());
  const auto img = cloud::package_environment(env, plat::vayu());
  for (const auto& target : plat::study_platforms()) {
    const auto d = cloud::deploy_image(img, target);
    EXPECT_GT(d.transfer_seconds, 10);  // multi-GB image over the WAN
    EXPECT_GT(d.boot_seconds, 30);
    EXPECT_NEAR(d.ready_seconds, d.transfer_seconds + d.boot_seconds, 1e-9);
  }
}

TEST(Packaging, TransferScalesWithIngestRate) {
  const auto img = cloud::package_environment(cloud::rebuild_portable(cloud::paper_environment()),
                                              plat::vayu());
  const auto slow = cloud::deploy_image(img, plat::ec2(), 10e6);
  const auto fast = cloud::deploy_image(img, plat::ec2(), 100e6);
  EXPECT_NEAR(slow.transfer_seconds / fast.transfer_seconds, 10.0, 1e-6);
}

// ----------------------------------------------------------------- scheduler
namespace {
std::vector<cloud::JobSpec> burst_workload() {
  std::vector<cloud::JobSpec> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(cloud::JobSpec{.name = "job" + std::to_string(i),
                                  .cores = 32,
                                  .runtime_local_s = 3600,
                                  .cloud_slowdown = 1.3,
                                  .submit_s = i * 60.0,
                                  .cloud_eligible = true});
  }
  return jobs;
}
}  // namespace

TEST(BatchScheduler, FifoWithoutBurstingQueuesUp) {
  cloud::BatchScheduler sched({.local_cores = 64, .burst_wait_threshold_s = -1});
  const auto r = sched.run(burst_workload());
  ASSERT_EQ(r.jobs.size(), 12u);
  EXPECT_EQ(r.cloud_jobs, 0);
  // 2 jobs fit at a time; the last job waits ~5 rounds.
  EXPECT_GT(r.max_wait_s, 4 * 3600.0 * 0.9);
}

TEST(BatchScheduler, CloudBurstingCutsWaits) {
  cloud::BatchScheduler local({.local_cores = 64, .burst_wait_threshold_s = -1});
  cloud::BatchScheduler burst({.local_cores = 64, .burst_wait_threshold_s = 1800});
  const auto r_local = local.run(burst_workload());
  const auto r_burst = burst.run(burst_workload());
  EXPECT_LT(r_burst.mean_wait_s, 0.5 * r_local.mean_wait_s);
  EXPECT_GT(r_burst.cloud_jobs, 0);
  EXPECT_GT(r_burst.cloud_cost_usd, 0);
  EXPECT_LT(r_burst.makespan_s, r_local.makespan_s);
}

TEST(BatchScheduler, IneligibleJobsStayLocal) {
  auto jobs = burst_workload();
  for (auto& j : jobs) j.cloud_eligible = false;
  cloud::BatchScheduler burst({.local_cores = 64, .burst_wait_threshold_s = 1800});
  const auto r = burst.run(jobs);
  EXPECT_EQ(r.cloud_jobs, 0);
}

TEST(BatchScheduler, HighSlowdownJobsStayLocal) {
  auto jobs = burst_workload();
  for (auto& j : jobs) j.cloud_slowdown = 5.0;  // comm-bound: bad candidates
  cloud::BatchScheduler burst({.local_cores = 64, .burst_wait_threshold_s = 1800});
  const auto r = burst.run(jobs);
  EXPECT_EQ(r.cloud_jobs, 0);
}

TEST(BatchScheduler, HighPriorityArrivalSuspendsRunningJob) {
  // The ANUPBS suspend-resume scheme: an urgent job preempts a running one
  // and the victim resumes afterwards, finishing late but intact.
  std::vector<cloud::JobSpec> jobs;
  jobs.push_back(cloud::JobSpec{.name = "long-low", .cores = 64, .runtime_local_s = 7200,
                                .cloud_slowdown = 9, .submit_s = 0, .cloud_eligible = false,
                                .priority = 0});
  jobs.push_back(cloud::JobSpec{.name = "urgent", .cores = 64, .runtime_local_s = 600,
                                .cloud_slowdown = 9, .submit_s = 600, .cloud_eligible = false,
                                .priority = 10});
  cloud::BatchScheduler sched({.local_cores = 64, .burst_wait_threshold_s = -1});
  const auto r = sched.run(jobs);
  ASSERT_EQ(r.jobs.size(), 2u);
  const auto& urgent = r.jobs[0].name == "urgent" ? r.jobs[0] : r.jobs[1];
  const auto& low = r.jobs[0].name == "long-low" ? r.jobs[0] : r.jobs[1];
  EXPECT_NEAR(urgent.start_s, 600, 1e-6);     // ran immediately on arrival
  EXPECT_NEAR(urgent.finish_s, 1200, 1e-6);
  EXPECT_EQ(low.suspensions, 1);
  EXPECT_NEAR(low.finish_s, 7200 + 600, 1e-6);  // paused for the urgent job
}

TEST(BatchScheduler, SuspendResumeDisabledQueuesUrgentJob) {
  std::vector<cloud::JobSpec> jobs;
  jobs.push_back(cloud::JobSpec{.name = "long-low", .cores = 64, .runtime_local_s = 7200,
                                .cloud_slowdown = 9, .submit_s = 0, .cloud_eligible = false,
                                .priority = 0});
  jobs.push_back(cloud::JobSpec{.name = "urgent", .cores = 64, .runtime_local_s = 600,
                                .cloud_slowdown = 9, .submit_s = 600, .cloud_eligible = false,
                                .priority = 10});
  cloud::BatchScheduler sched(
      {.local_cores = 64, .burst_wait_threshold_s = -1, .suspend_resume = false});
  const auto r = sched.run(jobs);
  const auto& urgent = r.jobs[0].name == "urgent" ? r.jobs[0] : r.jobs[1];
  EXPECT_NEAR(urgent.start_s, 7200, 1e-6);  // had to wait for the long job
}

TEST(BatchScheduler, EqualPriorityDoesNotPreempt) {
  std::vector<cloud::JobSpec> jobs;
  jobs.push_back(cloud::JobSpec{.name = "a", .cores = 64, .runtime_local_s = 3600,
                                .cloud_slowdown = 9, .submit_s = 0, .cloud_eligible = false});
  jobs.push_back(cloud::JobSpec{.name = "b", .cores = 64, .runtime_local_s = 3600,
                                .cloud_slowdown = 9, .submit_s = 10, .cloud_eligible = false});
  cloud::BatchScheduler sched({.local_cores = 64, .burst_wait_threshold_s = -1});
  const auto r = sched.run(jobs);
  for (const auto& j : r.jobs) EXPECT_EQ(j.suspensions, 0);
}

TEST(BatchScheduler, PartialPreemptionTakesOnlyWhatIsNeeded) {
  // Two 32-core low-priority jobs; a 32-core urgent job suspends only one.
  std::vector<cloud::JobSpec> jobs;
  jobs.push_back(cloud::JobSpec{.name = "low1", .cores = 32, .runtime_local_s = 3600,
                                .cloud_slowdown = 9, .submit_s = 0, .cloud_eligible = false});
  jobs.push_back(cloud::JobSpec{.name = "low2", .cores = 32, .runtime_local_s = 3600,
                                .cloud_slowdown = 9, .submit_s = 0, .cloud_eligible = false});
  jobs.push_back(cloud::JobSpec{.name = "urgent", .cores = 32, .runtime_local_s = 60,
                                .cloud_slowdown = 9, .submit_s = 100, .cloud_eligible = false,
                                .priority = 5});
  cloud::BatchScheduler sched({.local_cores = 64, .burst_wait_threshold_s = -1});
  const auto r = sched.run(jobs);
  int suspended = 0;
  for (const auto& j : r.jobs) suspended += j.suspensions;
  EXPECT_EQ(suspended, 1);
}

TEST(BatchScheduler, OversizedJobRejected) {
  cloud::BatchScheduler sched({.local_cores = 64});
  EXPECT_THROW(sched.run({cloud::JobSpec{.name = "huge", .cores = 128}}),
               std::invalid_argument);
}

TEST(BatchScheduler, EmptyQueueIsFine) {
  cloud::BatchScheduler sched({.local_cores = 64});
  const auto r = sched.run({});
  EXPECT_EQ(r.jobs.size(), 0u);
  EXPECT_DOUBLE_EQ(r.mean_wait_s, 0);
}
