// Unit tests for the platform machine models and the compute-time model.
#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace plat = cirrus::plat;
namespace sim = cirrus::sim;

TEST(Platform, PresetsMatchPaperTableI) {
  const auto v = plat::vayu();
  EXPECT_EQ(v.nodes, 1492);
  EXPECT_EQ(v.cores_per_node, 8);
  EXPECT_EQ(v.hw_threads_per_node, 8);
  EXPECT_DOUBLE_EQ(v.compute.clock_ghz, 2.93);
  EXPECT_EQ(v.fs.name, "Lustre");
  EXPECT_FALSE(v.compute.numa_masked);

  const auto d = plat::dcc();
  EXPECT_EQ(d.nodes, 8);
  EXPECT_EQ(d.hw_threads_per_node, 8);
  EXPECT_DOUBLE_EQ(d.compute.clock_ghz, 2.27);
  EXPECT_TRUE(d.compute.numa_masked);
  EXPECT_EQ(d.fs.name, "NFS");

  const auto e = plat::ec2();
  EXPECT_EQ(e.nodes, 4);
  EXPECT_EQ(e.cores_per_node, 8);
  EXPECT_EQ(e.hw_threads_per_node, 16);  // HyperThreading
  EXPECT_TRUE(e.compute.has_smt);
}

TEST(Platform, InterconnectOrderingMatchesPaperFig1) {
  // QDR IB >> 10GigE > GigE, by more than an order of magnitude at the top.
  const double v = plat::vayu().nic.bandwidth_Bps;
  const double e = plat::ec2().nic.bandwidth_Bps;
  const double d = plat::dcc().nic.bandwidth_Bps;
  EXPECT_GT(v, 5 * e);
  EXPECT_GT(e, 2 * d);
}

TEST(Platform, LatencyOrderingMatchesPaperFig2) {
  EXPECT_LT(plat::vayu().nic.latency_us, 5.0);
  EXPECT_GT(plat::ec2().nic.latency_us, 20.0);
  EXPECT_GT(plat::dcc().nic.latency_us, 20.0);
  // DCC's tail is the distinguishing feature (vSwitch jitter).
  EXPECT_GT(plat::dcc().nic.jitter_prob * plat::dcc().nic.jitter_mean_us,
            plat::ec2().nic.jitter_prob * plat::ec2().nic.jitter_mean_us);
}

TEST(Platform, ByNameRoundTrips) {
  EXPECT_EQ(plat::by_name("vayu").name, "vayu");
  EXPECT_EQ(plat::by_name("DCC").name, "dcc");
  EXPECT_EQ(plat::by_name("Ec2").name, "ec2");
  EXPECT_THROW(plat::by_name("bluegene"), std::invalid_argument);
}

TEST(Platform, StudyPlatformsHasAllThree) {
  const auto all = plat::study_platforms();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "dcc");
  EXPECT_EQ(all[1].name, "ec2");
  EXPECT_EQ(all[2].name, "vayu");
}

TEST(Placement, BlockFillUsesAllSlotsBeforeNextNode) {
  const auto p = plat::dcc();
  const auto pl = plat::place_block(p, 12, -1, {}, 1);
  ASSERT_EQ(pl.size(), 12u);
  for (int r = 0; r < 8; ++r) EXPECT_EQ(pl[static_cast<std::size_t>(r)].node, 0);
  for (int r = 8; r < 12; ++r) EXPECT_EQ(pl[static_cast<std::size_t>(r)].node, 1);
  EXPECT_EQ(pl[0].ranks_on_node, 8);
  EXPECT_EQ(pl[11].ranks_on_node, 4);
}

TEST(Placement, MaxRanksPerNodeSpreadsJob) {
  const auto p = plat::ec2();
  const auto pl = plat::place_block(p, 32, 8, {}, 1);  // the paper's "EC2-4"
  EXPECT_EQ(pl[31].node, 3);
  for (const auto& pp : pl) {
    EXPECT_EQ(pp.ranks_on_node, 8);
    EXPECT_FALSE(pp.shares_core);
  }
}

TEST(Placement, HyperThreadSharingDetectedOnEc2FullSubscription) {
  const auto p = plat::ec2();
  const auto pl = plat::place_block(p, 32, -1, {}, 1);  // 16 ranks on each of 2 nodes
  int shared = 0;
  for (const auto& pp : pl) shared += pp.shares_core;
  EXPECT_EQ(shared, 32);  // every core has both siblings busy
  const auto pl12 = plat::place_block(p, 12, -1, {}, 1);  // 12 on one node: 4 shared pairs
  int shared12 = 0;
  for (const auto& pp : pl12) shared12 += pp.shares_core;
  EXPECT_EQ(shared12, 8);  // 4 cores doubly occupied -> 8 ranks sharing
}

TEST(Placement, JobTooLargeThrows) {
  EXPECT_THROW(plat::place_block(plat::dcc(), 65, -1, {}, 1), std::invalid_argument);
  EXPECT_THROW(plat::place_block(plat::ec2(), 65, -1, {}, 1), std::invalid_argument);
  EXPECT_NO_THROW(plat::place_block(plat::vayu(), 512, -1, {}, 1));
}

TEST(Placement, NumaFactorsOnlyOnMaskedPlatforms) {
  plat::WorkloadTraits mem{.mem_intensity = 1.0};
  const auto pv = plat::place_block(plat::vayu(), 32, -1, mem, 7);
  for (const auto& pp : pv) EXPECT_DOUBLE_EQ(pp.numa_factor, 1.0);
  const auto pd = plat::place_block(plat::dcc(), 32, -1, mem, 7);
  bool any_penalty = false;
  for (const auto& pp : pd) {
    EXPECT_GE(pp.numa_factor, 1.0);
    EXPECT_LE(pp.numa_factor, 1.0 + plat::dcc().compute.numa_penalty_max);
    any_penalty = any_penalty || pp.numa_factor > 1.0;
  }
  EXPECT_TRUE(any_penalty);
}

TEST(Placement, NumaFactorsDeterministicPerSeed) {
  plat::WorkloadTraits mem{.mem_intensity = 0.8};
  const auto a = plat::place_block(plat::dcc(), 16, -1, mem, 11);
  const auto b = plat::place_block(plat::dcc(), 16, -1, mem, 11);
  const auto c = plat::place_block(plat::dcc(), 16, -1, mem, 12);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].numa_factor, b[i].numa_factor);
    differs = differs || a[i].numa_factor != c[i].numa_factor;
  }
  EXPECT_TRUE(differs);
}

TEST(ComputeModel, ClockRatioForCpuBoundWork) {
  // Pure CPU work (mem_intensity 0) should scale by clock ratio only.
  plat::WorkloadTraits cpu{.mem_intensity = 0.0};
  sim::Rng rng(1);
  plat::RankPlacement single{};  // one rank alone on a node
  auto d = plat::dcc();
  auto v = plat::vayu();
  d.compute.jitter_sigma = 0.0;
  v.compute.jitter_sigma = 0.0;
  const auto td = plat::compute_time(d, single, cpu, 100.0, rng);
  const auto tv = plat::compute_time(v, single, cpu, 100.0, rng);
  const double ratio = sim::to_seconds(td) / sim::to_seconds(tv);
  EXPECT_NEAR(ratio, 2.93 / 2.27 * 1.02, 1e-6);  // clock ratio x DCC virt overhead
}

TEST(ComputeModel, ReferenceSecondsOnDccAreIdentity) {
  plat::WorkloadTraits cpu{.mem_intensity = 0.0};
  auto p = plat::dcc();
  p.compute.virt_overhead = 1.0;
  p.compute.jitter_sigma = 0.0;
  sim::Rng rng(1);
  plat::RankPlacement single{};
  EXPECT_NEAR(sim::to_seconds(plat::compute_time(p, single, cpu, 123.0, rng)), 123.0, 1e-6);
}

TEST(ComputeModel, MemoryContentionGrowsWithRanksPerNode) {
  plat::WorkloadTraits mem{.mem_intensity = 0.75};
  const auto p = plat::vayu();
  const double c1 = plat::contention_factor(p, 1, mem);
  const double c2 = plat::contention_factor(p, 2, mem);
  const double c4 = plat::contention_factor(p, 4, mem);
  const double c8 = plat::contention_factor(p, 8, mem);
  EXPECT_DOUBLE_EQ(c1, 1.0);
  EXPECT_LT(c2, c4);
  EXPECT_LT(c4, c8);
  EXPECT_GT(c8, 1.5);  // memory-bound codes lose a lot to full subscription
}

TEST(ComputeModel, ContentionSaturatesAtPhysicalCores) {
  // HyperThread ranks do not add memory pressure: cores, not ranks, matter.
  plat::WorkloadTraits mem{.mem_intensity = 0.75};
  const auto p = plat::ec2();
  EXPECT_DOUBLE_EQ(plat::contention_factor(p, 16, mem), plat::contention_factor(p, 8, mem));
}

TEST(ComputeModel, EpLikeWorkloadSeesNoContention) {
  plat::WorkloadTraits cpu{.mem_intensity = 0.0};
  EXPECT_DOUBLE_EQ(plat::contention_factor(plat::vayu(), 8, cpu), 1.0);
}

TEST(ComputeModel, HyperThreadSharingRoughlyHalvesThroughput) {
  plat::WorkloadTraits cpu{.mem_intensity = 0.0};
  auto p = plat::ec2();
  p.compute.jitter_sigma = 0.0;
  sim::Rng rng(1);
  plat::RankPlacement alone{.node = 0, .slot = 0, .shares_core = false, .ranks_on_node = 1};
  plat::RankPlacement shared = alone;
  shared.shares_core = true;
  const double t1 = sim::to_seconds(plat::compute_time(p, alone, cpu, 10.0, rng));
  const double t2 = sim::to_seconds(plat::compute_time(p, shared, cpu, 10.0, rng));
  EXPECT_NEAR(t2 / t1, 2.0 / 1.05, 0.01);
}

TEST(ComputeModel, ZeroWorkIsFree) {
  sim::Rng rng(1);
  plat::RankPlacement single{};
  EXPECT_EQ(plat::compute_time(plat::vayu(), single, {}, 0.0, rng), 0);
  EXPECT_EQ(plat::compute_time(plat::vayu(), single, {}, -1.0, rng), 0);
}
