// Tests for the table/figure emitters.
#include "core/table.hpp"

#include <gtest/gtest.h>

namespace core = cirrus::core;

TEST(Table, RendersHeaderAndRows) {
  core::Table t({"name", "value"});
  t.row().add("alpha").add(1.5, 1);
  t.row().add("b").add(42);
  const auto s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("1.5"), std::string::npos);
  EXPECT_NE(s.find("42"), std::string::npos);
}

TEST(Table, CsvHasCommasAndNewlines) {
  core::Table t({"a", "b"});
  t.row().add(1).add(2);
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, AddBeforeRowThrows) {
  core::Table t({"a"});
  EXPECT_THROW(t.add("x"), std::logic_error);
}

TEST(Figure, TableAlignsSeriesOnSharedAxis) {
  core::Figure f;
  f.id = "figX";
  f.title = "test";
  f.xlabel = "n";
  f.series.push_back({"s1", {{1, 10}, {2, 20}}});
  f.series.push_back({"s2", {{2, 200}, {4, 400}}});
  const auto s = f.table_str();
  EXPECT_NE(s.find("figX"), std::string::npos);
  EXPECT_NE(s.find("s1"), std::string::npos);
  EXPECT_NE(s.find("400.000"), std::string::npos);
}

TEST(Figure, CsvHasUnionOfXValues) {
  core::Figure f;
  f.xlabel = "x";
  f.series.push_back({"a", {{1, 1}}});
  f.series.push_back({"b", {{2, 2}}});
  const auto csv = f.csv();
  EXPECT_EQ(csv, "x,a,b\n1,1.000,\n2,,2.000\n");
}

TEST(Figure, IntegerXValuesPrintWithoutDecimals) {
  core::Figure f;
  f.series.push_back({"a", {{65536, 1}}});
  EXPECT_NE(f.csv().find("65536,"), std::string::npos);
}
