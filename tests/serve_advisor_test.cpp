// The extracted advisor pipeline: deterministic, structurally sane, and
// reaching the same verdicts the cloudburst demo reached inline.
#include <gtest/gtest.h>

#include "serve/advisor.hpp"
#include "serve/service.hpp"

namespace {

using namespace cirrus::serve;

TEST(Advisor, Deterministic) {
  const AdvisorRequest req;
  const AdvisorResult a = advise(req);
  const AdvisorResult b = advise(req);
  EXPECT_EQ(a.local_runtime_s, b.local_runtime_s);
  EXPECT_EQ(a.predicted_s, b.predicted_s);
  EXPECT_EQ(a.spot_cost_usd, b.spot_cost_usd);
  EXPECT_EQ(a.advice, b.advice);
  // The JSON blob (the /advise cache payload) is byte-stable too.
  EXPECT_EQ(advise_json(req), advise_json(req));
}

TEST(Advisor, PipelineFieldsAreSane) {
  AdvisorRequest req;
  req.bench = "CG";
  req.np = 16;
  req.queue_wait_h = 4.0;
  const AdvisorResult a = advise(req);

  EXPECT_GT(a.local_runtime_s, 0);
  EXPECT_GT(a.local_comm_pct, 0);
  EXPECT_GT(a.image_size_mb, 0);
  EXPECT_TRUE(a.isa_rebuild_needed) << "the paper's SSE4 barrier fires on first deploy";
  EXPECT_FALSE(a.isa_error.empty());
  EXPECT_EQ(a.instances, 2) << "one cc1.4xlarge per 8 ranks";
  EXPECT_GT(a.predicted_s, 0);
  EXPECT_NEAR(a.predicted_s, a.predicted_comp_s + a.predicted_comm_s,
              0.01 * a.predicted_s);
  EXPECT_NEAR(a.slowdown, a.predicted_s / a.local_runtime_s, 1e-12);
  EXPECT_NEAR(a.local_turnaround_s, 4.0 * 3600 + a.local_runtime_s, 1e-9);
  EXPECT_GT(a.on_demand_cost_usd, a.spot_cost_usd) << "spot must undercut on-demand";
}

TEST(Advisor, AdviceLogic) {
  // Long queue + modest slowdown: burst.
  AdvisorRequest longq;
  longq.queue_wait_h = 4.0;
  const auto burst = advise(longq);
  EXPECT_EQ(burst.advice, AdvisorResult::Advice::Burst);
  EXPECT_STREQ(burst.advice_string(), "burst");

  // Zero queue wait: the cloud's deploy+boot overhead can't win.
  AdvisorRequest noq;
  noq.queue_wait_h = 0.0;
  const auto stay = advise(noq);
  EXPECT_NE(stay.advice, AdvisorResult::Advice::Burst);
}

TEST(Advisor, CanonicalKeyAndErrors) {
  AdvisorRequest req;
  req.bench = "CG";
  req.np = 16;
  req.queue_wait_h = 4.0;
  req.seed = 42;
  EXPECT_EQ(req.canonical_key(), "advise bench=CG np=16 queue_wait_h=4 seed=42");

  AdvisorRequest bad;
  bad.np = 0;
  EXPECT_THROW(advise(bad), std::invalid_argument);
  AdvisorRequest unknown;
  unknown.bench = "NOPE";
  EXPECT_THROW(advise(unknown), std::exception);
}

}  // namespace
