// Unit tests for the SoA event queue: the calendar-queue backend must pop
// exactly the same (when, sched, seq) sequence as the 4-ary heap for any
// input — the scheduler is a pure performance knob, never an observable.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/rng.hpp"

namespace sim = cirrus::sim;
using sim::EventQueue;
using sim::SchedulerKind;
using sim::SimTime;

namespace {

/// Pops everything, asserting both queues agree entry by entry.
void expect_identical_drain(EventQueue& heap, EventQueue& cal) {
  ASSERT_EQ(heap.size(), cal.size());
  std::uint64_t popped = 0;
  while (!heap.empty()) {
    ASSERT_EQ(heap.top_when(), cal.top_when()) << "divergence after " << popped << " pops";
    const auto h = heap.pop();
    const auto c = cal.pop();
    ASSERT_EQ(h.when, c.when) << "divergence after " << popped << " pops";
    ASSERT_TRUE(h.sched == c.sched) << "divergence after " << popped << " pops";
    ASSERT_EQ(h.seq, c.seq) << "divergence after " << popped << " pops";
    ASSERT_EQ(h.payload, c.payload) << "divergence after " << popped << " pops";
    ++popped;
  }
  EXPECT_TRUE(cal.empty());
}

}  // namespace

TEST(EventQueue, SchedulerKindRoundTrips) {
  EXPECT_EQ(sim::scheduler_from_string("heap4"), SchedulerKind::Heap4);
  EXPECT_EQ(sim::scheduler_from_string("heap"), SchedulerKind::Heap4);
  EXPECT_EQ(sim::scheduler_from_string("CALENDAR"), SchedulerKind::Calendar);
  EXPECT_EQ(sim::scheduler_from_string("cal"), SchedulerKind::Calendar);
  EXPECT_STREQ(sim::to_string(SchedulerKind::Heap4), "heap4");
  EXPECT_STREQ(sim::to_string(SchedulerKind::Calendar), "calendar");
  EXPECT_THROW(sim::scheduler_from_string("fifo"), std::invalid_argument);
}

TEST(EventQueue, BothBackendsPopTimeOrdered) {
  for (const auto kind : {SchedulerKind::Heap4, SchedulerKind::Calendar}) {
    EventQueue q(kind);
    sim::Rng rng(7);
    std::uint64_t seq = 0;
    for (int i = 0; i < 1000; ++i) {
      const SimTime when = static_cast<SimTime>(rng.u64() % 1'000'000);
      q.push(when, {when, 0}, seq++, 0);
    }
    SimTime prev = -1;
    while (!q.empty()) {
      const auto e = q.pop();
      EXPECT_GE(e.when, prev);
      prev = e.when;
    }
  }
}

TEST(EventQueue, CalendarMatchesHeapOnRandomStream) {
  // Interleaved pushes and pops over a clustered timestamp distribution
  // (mixed scales stress the calendar's adaptive bucket width).
  EventQueue heap(SchedulerKind::Heap4);
  EventQueue cal(SchedulerKind::Calendar);
  sim::Rng rng(42);
  std::uint64_t seq = 0;
  SimTime now = 0;
  for (int round = 0; round < 200; ++round) {
    const int pushes = 1 + static_cast<int>(rng.u64() % 40);
    for (int i = 0; i < pushes; ++i) {
      // Mix of near-future, far-future and same-timestamp events.
      const std::uint64_t r = rng.u64();
      SimTime when = now;
      switch (r % 4) {
        case 0: when = now + static_cast<SimTime>(r % 100); break;
        case 1: when = now + static_cast<SimTime>(r % 100'000); break;
        case 2: when = now + static_cast<SimTime>(r % 100'000'000); break;
        case 3: when = now; break;  // exact tie: seq must arbitrate
      }
      // The engine stamps sched = scheduling-time now, which is monotone in
      // seq; mimic that here (and tie sched == now for the exact-tie case so
      // seq arbitrates).
      heap.push(when, {now, 0}, seq, seq * 8);
      cal.push(when, {now, 0}, seq, seq * 8);
      ++seq;
    }
    const int pops = static_cast<int>(rng.u64() % (heap.size() + 1));
    for (int i = 0; i < pops && !heap.empty(); ++i) {
      ASSERT_EQ(heap.top_when(), cal.top_when());
      const auto h = heap.pop();
      const auto c = cal.pop();
      ASSERT_EQ(h.when, c.when);
      ASSERT_EQ(h.seq, c.seq);
      now = h.when;  // monotone pop floor, as the engine guarantees
    }
  }
  expect_identical_drain(heap, cal);
}

TEST(EventQueue, CalendarMatchesHeapOnAllTies) {
  // Every event at one timestamp and sched: pop order must be pure seq order.
  EventQueue heap(SchedulerKind::Heap4);
  EventQueue cal(SchedulerKind::Calendar);
  for (std::uint64_t s = 0; s < 500; ++s) {
    heap.push(12345, {12000, 0}, s, s);
    cal.push(12345, {12000, 0}, s, s);
  }
  std::uint64_t expect = 0;
  while (!heap.empty()) {
    const auto h = heap.pop();
    const auto c = cal.pop();
    ASSERT_EQ(h.seq, expect);
    ASSERT_EQ(c.seq, expect);
    ++expect;
  }
}

TEST(EventQueue, SchedArbitratesEqualTimestamps) {
  // At equal `when`, the scheduling-time lane outranks seq: an event
  // scheduled earlier in virtual time pops first even if pushed later.
  // This is what lets the multi-LP coordinator slot cross-engine deliveries
  // into the exact equal-time order a one-engine run produces.
  for (const auto kind : {SchedulerKind::Heap4, SchedulerKind::Calendar}) {
    EventQueue q(kind);
    q.push(1000, {900, 850, 0}, 0, 10);  // local wake, scheduled at t=900
    q.push(1000, {700, 600, 0}, 1, 20);  // delivery priced at t=700, pushed later
    q.push(1000, {900, 850, 0}, 2, 30);  // same stamp as the first: seq arbitrates
    q.push(1000, {700, 600, 2}, 3, 40);  // same (t, pt), later service ordinal
    q.push(1000, {700, 600, 1}, 4, 50);  // same (t, pt), earlier service ordinal
    q.push(1000, {700, 500, 9}, 5, 60);  // same t, earlier parent: outranks ordinals
    ASSERT_EQ(q.pop().payload, 60u) << sim::to_string(kind);
    ASSERT_EQ(q.pop().payload, 20u) << sim::to_string(kind);
    ASSERT_EQ(q.pop().payload, 50u) << sim::to_string(kind);
    ASSERT_EQ(q.pop().payload, 40u) << sim::to_string(kind);
    ASSERT_EQ(q.pop().payload, 10u) << sim::to_string(kind);
    ASSERT_EQ(q.pop().payload, 30u) << sim::to_string(kind);
  }
}

TEST(EventQueue, CalendarSurvivesSparseFarFuture) {
  // A lone event far beyond the bucket year exercises the full-scan
  // fallback in cal_locate_min.
  EventQueue heap(SchedulerKind::Heap4);
  EventQueue cal(SchedulerKind::Calendar);
  std::uint64_t seq = 0;
  for (SimTime t : {SimTime{10}, SimTime{20}, SimTime{30}}) {
    heap.push(t, {t, 0}, seq, 0);
    cal.push(t, {t, 0}, seq, 0);
    ++seq;
  }
  heap.push(9'000'000'000'000LL, {30, 0}, seq, 0);
  cal.push(9'000'000'000'000LL, {30, 0}, seq, 0);
  expect_identical_drain(heap, cal);
}
