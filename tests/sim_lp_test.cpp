// Multi-LP determinism: a job partitioned over 4 logical processes must
// publish byte-identical observables to the same job on 1 LP — virtual
// walltime, event counts, IPM breakdowns, reported values, global counter
// deltas and (canonicalised) traces. Covers a communication-heavy NPB
// kernel, a rendezvous-heavy one, and a fault-killed run.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "mpi/minimpi.hpp"
#include "npb/npb.hpp"
#include "obs/telemetry.hpp"

namespace mpi = cirrus::mpi;
namespace npb = cirrus::npb;
namespace obs = cirrus::obs;
using cirrus::ipm::Trace;

namespace {

/// Builds an NPB job config forced onto >= 4 nodes so 4 LPs actually split.
/// The platform copy runs jitter-free: with latency jitter on, equal-time
/// event ties whose scheduling genealogies diverged several hops back can
/// consume the shared jitter stream in a different order than one engine
/// would (see DESIGN.md — "Multi-LP determinism"), so the bitwise contract
/// holds on jitter-free platforms and the jittery case is tested separately
/// with its own (repeatability + tolerance) contract.
mpi::JobConfig npb_config(const std::string& bench, int np, int lp, bool jitter = false) {
  const auto& info = npb::benchmark(bench);
  auto cfg = npb::make_job(info, npb::Class::A, cirrus::plat::by_name("vayu"), np,
                           /*execute=*/false, /*seed=*/1);
  if (!jitter) cfg.platform.nic.jitter_prob = 0.0;
  cfg.max_ranks_per_node = 4;  // np=16 -> 4 nodes -> lp up to 4
  cfg.enable_trace = true;
  cfg.lp = lp;
  return cfg;
}

void run_npb_body(const std::string& bench, mpi::RankEnv& env) {
  const auto res = npb::benchmark(bench).fn(env, npb::Class::A);
  if (env.rank() == 0) env.report("verification_value", res.verification_value);
}

/// Counter deltas this job added to the process-wide totals.
std::map<std::string, std::uint64_t> counter_delta(
    const std::map<std::string, std::uint64_t>& before) {
  auto after = obs::GlobalCounters::instance().snapshot();
  std::map<std::string, std::uint64_t> d;
  for (const auto& [k, v] : after) {
    const auto it = before.find(k);
    const std::uint64_t prev = it == before.end() ? 0 : it->second;
    if (v != prev) d[k] = v - prev;
  }
  return d;
}

/// Trace equality on canonicalised copies: a single-LP trace records in
/// engine execution order, a merged multi-LP trace in canonical sort order;
/// both canonicalise to the same sequence iff they hold the same spans.
void expect_traces_equal(const Trace* a, const Trace* b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  Trace ca, cb;
  ca.append(*a);
  cb.append(*b);
  ca.sort_canonical();
  cb.sort_canonical();
  ASSERT_EQ(ca.events().size(), cb.events().size());
  for (std::size_t i = 0; i < ca.events().size(); ++i) {
    const auto& x = ca.events()[i];
    const auto& y = cb.events()[i];
    ASSERT_EQ(x.rank, y.rank) << "span " << i;
    ASSERT_EQ(x.begin, y.begin) << "span " << i;
    ASSERT_EQ(x.end, y.end) << "span " << i;
    ASSERT_EQ(x.kind, y.kind) << "span " << i;
    ASSERT_EQ(x.bytes, y.bytes) << "span " << i;
    ASSERT_EQ(x.peer, y.peer) << "span " << i;
  }
  ASSERT_EQ(ca.flows().size(), cb.flows().size());
  for (std::size_t i = 0; i < ca.flows().size(); ++i) {
    const auto& x = ca.flows()[i];
    const auto& y = cb.flows()[i];
    ASSERT_EQ(x.src_rank, y.src_rank) << "flow " << i;
    ASSERT_EQ(x.dst_rank, y.dst_rank) << "flow " << i;
    ASSERT_EQ(x.send_time, y.send_time) << "flow " << i;
    ASSERT_EQ(x.recv_time, y.recv_time) << "flow " << i;
  }
  ASSERT_EQ(ca.instants().size(), cb.instants().size());
  for (std::size_t i = 0; i < ca.instants().size(); ++i) {
    ASSERT_EQ(ca.instants()[i].t, cb.instants()[i].t) << "instant " << i;
    ASSERT_EQ(ca.instants()[i].name, cb.instants()[i].name) << "instant " << i;
  }
}

struct RunCapture {
  mpi::JobResult result;
  std::map<std::string, std::uint64_t> counters;
};

RunCapture run_and_capture(const std::string& bench, int lp) {
  const auto before = obs::GlobalCounters::instance().snapshot();
  auto cfg = npb_config(bench, 16, lp);
  RunCapture cap;
  cap.result = mpi::run_job(cfg, [&bench](mpi::RankEnv& env) { run_npb_body(bench, env); });
  cap.counters = counter_delta(before);
  return cap;
}

void expect_runs_identical(const RunCapture& r1, const RunCapture& r4) {
  // Bitwise, not approximate: the multi-LP run must price every transfer
  // with the same RNG draws in the same order.
  EXPECT_EQ(r1.result.elapsed_seconds, r4.result.elapsed_seconds);
  EXPECT_EQ(r1.result.events_processed, r4.result.events_processed);
  EXPECT_EQ(r1.result.ipm.wall_seconds(), r4.result.ipm.wall_seconds());
  EXPECT_EQ(r1.result.ipm.comm_pct(), r4.result.ipm.comm_pct());
  EXPECT_EQ(r1.result.ipm.imbalance_pct(), r4.result.ipm.imbalance_pct());
  ASSERT_EQ(r1.result.values.size(), r4.result.values.size());
  for (const auto& [k, v] : r1.result.values) {
    ASSERT_TRUE(r4.result.values.count(k)) << k;
    EXPECT_EQ(v, r4.result.values.at(k)) << k;
  }
  EXPECT_EQ(r1.counters, r4.counters);
  expect_traces_equal(r1.result.trace.get(), r4.result.trace.get());
}

}  // namespace

TEST(MultiLp, CgBitIdenticalAcrossLpCounts) {
  const auto r1 = run_and_capture("CG", 1);
  const auto r4 = run_and_capture("CG", 4);
  expect_runs_identical(r1, r4);
  // Sanity: the comparison is not vacuous.
  EXPECT_GT(r1.result.events_processed, 1000U);
  EXPECT_GT(r1.counters.at("net_transfers_internode"), 0U);
}

TEST(MultiLp, RendezvousHeavyFtBitIdentical) {
  // FT moves large messages through the rendezvous path, exercising the
  // coordinator-deferred transfer + clear-to-send pricing.
  const auto r1 = run_and_capture("FT", 1);
  const auto r4 = run_and_capture("FT", 4);
  expect_runs_identical(r1, r4);
  EXPECT_GT(r1.counters.at("mpi_sends_rendezvous"), 0U);
}

TEST(MultiLp, LpCountClampsToNodes) {
  // 4 nodes: asking for 64 LPs must silently clamp, not crash or diverge.
  const auto r1 = run_and_capture("CG", 1);
  const auto r64 = run_and_capture("CG", 64);
  expect_runs_identical(r1, r64);
}

TEST(MultiLp, KilledJobIdenticalKillTimeAndTrace) {
  auto run_killed = [](int lp) {
    auto cfg = npb_config("CG", 16, lp);
    // Mid-run: CG.A.16 on vayu takes ~2.5 virtual seconds.
    cfg.faults.kill_at_s = 1.0;
    double at = -1;
    std::shared_ptr<const Trace> trace;
    try {
      mpi::run_job(cfg, [](mpi::RankEnv& env) { run_npb_body("CG", env); });
      ADD_FAILURE() << "job was not killed";
    } catch (const mpi::JobKilledError& e) {
      at = e.at_seconds;
      trace = e.trace;
    }
    return std::make_pair(at, trace);
  };
  const auto [at1, trace1] = run_killed(1);
  const auto [at4, trace4] = run_killed(4);
  EXPECT_EQ(at1, at4);
  EXPECT_GT(at1, 0.0);
  expect_traces_equal(trace1.get(), trace4.get());
}

TEST(MultiLp, JitteryPlatformRepeatableAndClose) {
  // With latency jitter enabled the shared RNG stream is consumed in pricing
  // order, and a residual class of equal-time ties (genealogies that diverged
  // more than two scheduling hops back) can order differently across LP
  // counts — so lp1-vs-lp4 is a tolerance contract here, not a bitwise one.
  // What IS exact: the same multi-LP run twice. The window protocol must be
  // deterministic under real thread scheduling (this is the assertion TSan
  // runs hammer on).
  auto run_jittery = [](int lp) {
    auto cfg = npb_config("CG", 16, lp, /*jitter=*/true);
    return mpi::run_job(cfg, [](mpi::RankEnv& env) { run_npb_body("CG", env); });
  };
  const auto a = run_jittery(4);
  const auto b = run_jittery(4);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_EQ(a.events_processed, b.events_processed);
  expect_traces_equal(a.trace.get(), b.trace.get());

  const auto r1 = run_jittery(1);
  EXPECT_NEAR(r1.elapsed_seconds, a.elapsed_seconds, 0.002 * r1.elapsed_seconds);
  const double ev1 = static_cast<double>(r1.events_processed);
  const double ev4 = static_cast<double>(a.events_processed);
  EXPECT_NEAR(ev1, ev4, 0.002 * ev1);
}

TEST(MultiLp, TelemetryForcesSingleLp) {
  // Profiling hooks poll live engine state on engine 0; multi-LP runs must
  // silently fall back to one LP and still produce identical results.
  auto cfg = npb_config("CG", 16, 4);
  cfg.telemetry.enabled = true;
  const auto r = mpi::run_job(cfg, [](mpi::RankEnv& env) { run_npb_body("CG", env); });
  auto cfg1 = npb_config("CG", 16, 1);
  const auto r1 = mpi::run_job(cfg1, [](mpi::RankEnv& env) { run_npb_body("CG", env); });
  EXPECT_EQ(r.elapsed_seconds, r1.elapsed_seconds);
  EXPECT_EQ(r.events_processed, r1.events_processed);
}
