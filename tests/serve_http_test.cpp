// End-to-end service tests over real loopback sockets: routing, the
// cold-miss/warm-hit contract (byte-identical bodies), POST/GET
// equivalence, error paths, verify mode and the admission gate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/jsonlite.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace {

using namespace cirrus;

/// One in-process server + connected client per fixture instance.
class ServeTest : public ::testing::Test {
 protected:
  void start(serve::Service::Options sopts = {}) {
    service_ = std::make_unique<serve::Service>(sopts);
    server_ = std::make_unique<serve::HttpServer>(
        serve::HttpServer::Options{}, [this](const serve::HttpRequest& req) {
          return service_->handle(req);
        });
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    ASSERT_TRUE(client_.connect(server_->port(), "127.0.0.1", &error)) << error;
  }

  void TearDown() override {
    client_.close();
    if (server_) server_->stop();
  }

  std::unique_ptr<serve::Service> service_;
  std::unique_ptr<serve::HttpServer> server_;
  serve::HttpClient client_;
};

constexpr const char* kQuery = "/query?workload=npb&bench=EP&class=S&np=4";

TEST_F(ServeTest, Healthz) {
  start();
  const auto resp = client_.request("GET", "/healthz");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, R"({"status":"ok"})");
}

TEST_F(ServeTest, ColdMissThenWarmHitByteIdentical) {
  start();
  const auto cold = client_.request("GET", kQuery);
  ASSERT_TRUE(cold.has_value());
  EXPECT_EQ(cold->status, 200);
  EXPECT_EQ(cold->headers.at("x-cirrus-cache"), "miss");
  EXPECT_NE(cold->body.find(R"("cache":"miss")"), std::string::npos);

  const auto warm1 = client_.request("GET", kQuery);
  const auto warm2 = client_.request("GET", kQuery);
  ASSERT_TRUE(warm1.has_value() && warm2.has_value());
  EXPECT_EQ(warm1->headers.at("x-cirrus-cache"), "hit");
  EXPECT_NE(warm1->body.find(R"("cache":"hit")"), std::string::npos);
  // Warm repeats are byte-identical to each other, and differ from the cold
  // body only in the cache marker.
  EXPECT_EQ(warm1->body, warm2->body);
  std::string cold_as_hit = cold->body;
  const auto pos = cold_as_hit.find(R"("cache":"miss")");
  ASSERT_NE(pos, std::string::npos);
  cold_as_hit.replace(pos, 14, R"("cache":"hit")");
  EXPECT_EQ(warm1->body, cold_as_hit);

  // The response is well-formed JSON carrying the canonical key.
  obs::jsonlite::Value doc;
  std::string error;
  ASSERT_TRUE(obs::jsonlite::parse(warm1->body, doc, &error)) << error;
  ASSERT_NE(doc.find("schema"), nullptr);
  EXPECT_EQ(doc.find("schema")->str, "cirrus-serve/1");
  ASSERT_NE(doc.find("key"), nullptr);
  EXPECT_NE(doc.find("key")->str.find("workload=npb"), std::string::npos);
}

TEST_F(ServeTest, PostJsonEqualsGetQueryString) {
  start();
  const auto get = client_.request("GET", kQuery);
  const auto post = client_.request(
      "POST", "/query", R"({"workload":"npb","bench":"EP","class":"S","np":4})");
  ASSERT_TRUE(get.has_value() && post.has_value());
  EXPECT_EQ(post->status, 200);
  // Same canonical request: the POST is a warm hit on the GET's entry and
  // the result payloads are byte-identical.
  EXPECT_EQ(post->headers.at("x-cirrus-cache"), "hit");
  EXPECT_EQ(get->headers.at("x-cirrus-key"), post->headers.at("x-cirrus-key"));
}

TEST_F(ServeTest, AdviseEndpoint) {
  start();
  const auto resp = client_.request("GET", "/advise?bench=CG&np=16&queue_wait_hours=4");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  obs::jsonlite::Value doc;
  std::string error;
  ASSERT_TRUE(obs::jsonlite::parse(resp->body, doc, &error)) << error;
  const auto* result = doc.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->find("advice"), nullptr);
  EXPECT_EQ(result->find("advice")->str, "burst");
  const auto warm = client_.request("GET", "/advise?bench=CG&np=16&queue_wait_hours=4");
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->headers.at("x-cirrus-cache"), "hit");
}

TEST_F(ServeTest, ErrorPaths) {
  start();
  const auto notfound = client_.request("GET", "/nope");
  ASSERT_TRUE(notfound.has_value());
  EXPECT_EQ(notfound->status, 404);

  const auto badjson = client_.request("POST", "/query", "{not json");
  ASSERT_TRUE(badjson.has_value());
  EXPECT_EQ(badjson->status, 400);
  EXPECT_NE(badjson->body.find("invalid JSON"), std::string::npos);

  const auto badknob = client_.request("GET", "/query?workload=npb&np=minus-two");
  ASSERT_TRUE(badknob.has_value());
  EXPECT_EQ(badknob->status, 400);

  const auto unknown = client_.request("GET", "/query?frobnicate=1");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->status, 400);
  EXPECT_NE(unknown->body.find("unknown key"), std::string::npos);
}

TEST_F(ServeTest, MetricsExposition) {
  start();
  (void)client_.request("GET", kQuery);
  (void)client_.request("GET", kQuery);
  const auto resp = client_.request("GET", "/metrics");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_NE(resp->body.find("serve_cache_requests_total{result=\"hit\"} 1"),
            std::string::npos);
  EXPECT_NE(resp->body.find("serve_cache_requests_total{result=\"miss\"} 1"),
            std::string::npos);
  EXPECT_NE(resp->body.find("serve_requests_total{route=\"query\"} 2"), std::string::npos);
  EXPECT_NE(resp->body.find("serve_request_latency_us"), std::string::npos);
}

TEST_F(ServeTest, VerifyModeReExecutesHits) {
  serve::Service::Options sopts;
  sopts.verify_fraction = 1.0;  // audit every hit
  start(sopts);
  const auto cold = client_.request("GET", kQuery);
  ASSERT_TRUE(cold.has_value());
  const auto warm = client_.request("GET", kQuery);
  ASSERT_TRUE(warm.has_value());
  // Determinism holds, so the audited hit still succeeds...
  EXPECT_EQ(warm->status, 200);
  EXPECT_EQ(warm->headers.at("x-cirrus-cache"), "hit");
  // ...and the audit shows up in the verify counter.
  const auto metrics = client_.request("GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_NE(metrics->body.find("serve_verify_total{result=\"ok\"} 1"), std::string::npos);
}

TEST(GateTest, BoundsInFlightWork) {
  serve::Gate gate(2);
  ASSERT_TRUE(gate.acquire_for(std::chrono::milliseconds(10)));
  ASSERT_TRUE(gate.acquire_for(std::chrono::milliseconds(10)));
  EXPECT_EQ(gate.in_flight(), 2);
  // Full: a third acquisition times out (the service turns this into 503).
  EXPECT_FALSE(gate.acquire_for(std::chrono::milliseconds(50)));
  gate.release();
  EXPECT_TRUE(gate.acquire_for(std::chrono::milliseconds(10)));
  gate.release();
  gate.release();
  EXPECT_EQ(gate.in_flight(), 0);
}

TEST(GateTest, ReleaseWakesWaiter) {
  serve::Gate gate(1);
  ASSERT_TRUE(gate.acquire_for(std::chrono::milliseconds(10)));
  std::thread releaser([&gate] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.release();
  });
  // Blocks until the releaser frees the slot — well within the timeout.
  EXPECT_TRUE(gate.acquire_for(std::chrono::milliseconds(2000)));
  releaser.join();
  gate.release();
}

TEST_F(ServeTest, BackpressureRejectsWhenQueueFull) {
  serve::Service::Options sopts;
  sopts.max_inflight_jobs = 1;
  sopts.queue_timeout_ms = 1;  // reject almost immediately when the slot is busy
  start(sopts);

  // Hold the only compute slot so every miss times out at admission.
  auto& gate = const_cast<serve::Gate&>(service_->gate());
  ASSERT_TRUE(gate.acquire_for(std::chrono::milliseconds(100)));
  const auto rejected = client_.request("GET", kQuery);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, 503);
  EXPECT_EQ(rejected->headers.at("x-cirrus-cache"), "rejected");
  EXPECT_EQ(rejected->headers.at("retry-after"), "1");
  gate.release();

  // With the slot free the same query now computes and caches.
  const auto ok = client_.request("GET", kQuery);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(ok->headers.at("x-cirrus-cache"), "miss");
}

TEST(HttpParsing, QueryString) {
  const auto kvs = serve::parse_query_string("a=1&b=two%20words&flag&c=%3D");
  ASSERT_EQ(kvs.size(), 4U);
  EXPECT_EQ(kvs[0], (std::pair<std::string, std::string>{"a", "1"}));
  EXPECT_EQ(kvs[1], (std::pair<std::string, std::string>{"b", "two words"}));
  EXPECT_EQ(kvs[2], (std::pair<std::string, std::string>{"flag", ""}));
  EXPECT_EQ(kvs[3], (std::pair<std::string, std::string>{"c", "="}));
}

TEST(HttpServerTest, ConcurrentClients) {
  serve::Service service({});
  serve::HttpServer server(serve::HttpServer::Options{},
                           [&service](const serve::HttpRequest& req) {
                             return service.handle(req);
                           });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Prime the cache so the storm below is mixed hit/miss.
  {
    serve::HttpClient warm;
    ASSERT_TRUE(warm.connect(server.port()));
    const auto resp = warm.request("GET", kQuery);
    ASSERT_TRUE(resp.has_value());
  }

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serve::HttpClient client;
      if (!client.connect(server.port())) return;
      for (int i = 0; i < 5; ++i) {
        // Odd clients stay on the hot key; even ones fan out to cold seeds.
        const std::string target =
            (c % 2 != 0) ? kQuery
                         : std::string(kQuery) + "&seed=" + std::to_string(100 + c * 5 + i);
        const auto resp = client.request("GET", target);
        if (resp && resp->status == 200) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kClients * 5);
  server.stop();
  EXPECT_EQ(server.active_connections(), 0);
}

}  // namespace
