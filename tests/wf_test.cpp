// Tests for the workflow subsystem: DAG generator, HEFT/FIFO planners, the
// master/worker runtime, and ext7 manifest determinism across sweep worker
// counts and LP counts.
#include "wf/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "bench/registry.hpp"
#include "cloud/wf_sched.hpp"
#include "core/options.hpp"
#include "valid/manifest.hpp"
#include "wf/runtime.hpp"

namespace cloud = cirrus::cloud;
namespace core = cirrus::core;
namespace mpi = cirrus::mpi;
namespace plat = cirrus::plat;
namespace storage = cirrus::storage;
namespace valid = cirrus::valid;
namespace wf = cirrus::wf;

namespace {

wf::GenOptions gen_opts(wf::Shape shape, int width = 0, std::uint64_t seed = 1) {
  wf::GenOptions g;
  g.shape = shape;
  g.width = width;
  g.seed = seed;
  return g;
}

}  // namespace

TEST(WfDag, ShapeStringsRoundTrip) {
  for (const auto s : {wf::Shape::Diamond, wf::Shape::Montage, wf::Shape::Epigenomics,
                       wf::Shape::Broadband}) {
    EXPECT_EQ(wf::shape_from_string(wf::to_string(s)), s);
  }
  EXPECT_THROW(wf::shape_from_string("cybershake"), std::invalid_argument);
}

TEST(WfDag, ShapesHaveExpectedStructure) {
  // montage(W): W project + (W-1) fits + concat + bgmodel + W background
  //             + add + shrink = 3W + 3
  EXPECT_EQ(wf::generate(gen_opts(wf::Shape::Montage, 16)).n_tasks(), 51);
  // epigenomics(W): split + 4 per pipeline + merge/index/pileup = 4W + 4
  EXPECT_EQ(wf::generate(gen_opts(wf::Shape::Epigenomics, 8)).n_tasks(), 36);
  // broadband(W): 3 per site + peaks + plot = 3W + 2
  EXPECT_EQ(wf::generate(gen_opts(wf::Shape::Broadband, 8)).n_tasks(), 26);
  // diamond(W): src + W + sink
  EXPECT_EQ(wf::generate(gen_opts(wf::Shape::Diamond, 8)).n_tasks(), 10);
}

TEST(WfDag, TasksAreTopologicallyOrderedWithConsistentSuccs) {
  const auto dag = wf::generate(gen_opts(wf::Shape::Montage, 12, 42));
  ASSERT_EQ(dag.succs.size(), dag.tasks.size());
  std::size_t edges = 0;
  for (const auto& t : dag.tasks) {
    for (const int d : t.deps) {
      ASSERT_LT(d, t.id);
      const auto& fw = dag.succs[static_cast<std::size_t>(d)];
      EXPECT_NE(std::find(fw.begin(), fw.end(), t.id), fw.end());
    }
    edges += t.deps.size();
  }
  std::size_t fw_edges = 0;
  for (const auto& s : dag.succs) fw_edges += s.size();
  EXPECT_EQ(edges, fw_edges);
}

TEST(WfDag, GenerationIsByteStablePerSeedAndSensitiveToIt) {
  for (const auto s : {wf::Shape::Diamond, wf::Shape::Montage, wf::Shape::Epigenomics,
                       wf::Shape::Broadband}) {
    const std::string a = wf::dump(wf::generate(gen_opts(s, 0, 9)));
    const std::string b = wf::dump(wf::generate(gen_opts(s, 0, 9)));
    EXPECT_EQ(a, b) << wf::to_string(s);
    EXPECT_NE(a, wf::dump(wf::generate(gen_opts(s, 0, 10)))) << wf::to_string(s);
  }
}

TEST(WfSched, HeftPlanIsWellFormed) {
  const auto dag = wf::generate(gen_opts(wf::Shape::Epigenomics, 8));
  const auto costs = cloud::WfCostModel::estimate(
      plat::ec2(), storage::model_for(plat::ec2(), storage::Backend::Object));
  const auto plan = cloud::plan_workflow(dag, 6, cloud::WfPolicy::Heft, costs);

  EXPECT_EQ(plan.workers, 6);
  ASSERT_EQ(plan.worker_of.size(), static_cast<std::size_t>(dag.n_tasks()));
  ASSERT_EQ(plan.order.size(), static_cast<std::size_t>(dag.n_tasks()));
  EXPECT_GT(plan.predicted_makespan_s, 0.0);
  for (const int w : plan.worker_of) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 6);
  }
  // Upward ranks guarantee every producer is dispatched before its consumer.
  std::vector<int> pos(static_cast<std::size_t>(dag.n_tasks()));
  for (std::size_t i = 0; i < plan.order.size(); ++i) {
    pos[static_cast<std::size_t>(plan.order[i])] = static_cast<int>(i);
  }
  for (const auto& t : dag.tasks) {
    for (const int d : t.deps) {
      EXPECT_LT(pos[static_cast<std::size_t>(d)], pos[static_cast<std::size_t>(t.id)]);
    }
  }
}

TEST(WfSched, FifoPlanLeavesAssignmentDynamic) {
  const auto dag = wf::generate(gen_opts(wf::Shape::Diamond, 4));
  const auto costs = cloud::WfCostModel::estimate(
      plat::dcc(), storage::model_for(plat::dcc(), storage::Backend::Nfs));
  const auto plan = cloud::plan_workflow(dag, 3, cloud::WfPolicy::Fifo, costs);
  EXPECT_TRUE(plan.worker_of.empty());
  EXPECT_EQ(plan.predicted_makespan_s, 0.0);
  EXPECT_THROW(cloud::plan_workflow(dag, 0, cloud::WfPolicy::Fifo, costs),
               std::invalid_argument);
}

TEST(WfRuntime, DiamondRunsEndToEndAndIsDeterministic) {
  const auto dag = wf::generate(gen_opts(wf::Shape::Diamond, 6));
  const auto costs = cloud::WfCostModel::estimate(
      plat::dcc(), storage::model_for(plat::dcc(), storage::Backend::Lustre));
  const auto plan = cloud::plan_workflow(dag, 4, cloud::WfPolicy::Heft, costs);

  mpi::JobConfig cfg;
  cfg.platform = plat::dcc();
  cfg.max_ranks_per_node = 4;  // force two nodes so locality accounting runs
  cfg.seed = 3;
  cfg.execute = false;
  cfg.storage_backend = storage::Backend::Lustre;
  cfg.lp = 1;

  const auto a = wf::run(dag, plan, cfg);
  EXPECT_EQ(a.tasks, static_cast<std::uint64_t>(dag.n_tasks()));
  EXPECT_GT(a.makespan_s, 0.0);
  // Every input file is accounted exactly once: external inputs are always
  // staged; each dependency edge is either a scratch hit or a staged file.
  std::uint64_t ext_files = 0, edge_files = 0;
  for (const auto& t : dag.tasks) {
    ext_files += t.ext_in_bytes > 0 ? 1 : 0;
    edge_files += t.deps.size();
  }
  EXPECT_EQ(a.staged_files + a.scratch_hits, ext_files + edge_files);
  EXPECT_GT(a.job.storage_stats.writes, 0U);

  const auto b = wf::run(dag, plan, cfg);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.job.events_processed, b.job.events_processed);
  EXPECT_EQ(a.staged_bytes, b.staged_bytes);

  auto cfg4 = cfg;
  cfg4.lp = 4;
  const auto c = wf::run(dag, plan, cfg4);
  EXPECT_EQ(a.makespan_s, c.makespan_s);
  EXPECT_EQ(a.job.events_processed, c.job.events_processed);
}

TEST(WfRuntime, FifoRunCoversAllTasksToo) {
  const auto dag = wf::generate(gen_opts(wf::Shape::Broadband, 4));
  const auto costs = cloud::WfCostModel::estimate(
      plat::ec2(), storage::model_for(plat::ec2(), storage::Backend::Object));
  const auto plan = cloud::plan_workflow(dag, 4, cloud::WfPolicy::Fifo, costs);
  mpi::JobConfig cfg;
  cfg.platform = plat::ec2();
  cfg.seed = 5;
  cfg.execute = false;
  cfg.storage_backend = storage::Backend::Object;
  const auto r = wf::run(dag, plan, cfg);
  EXPECT_EQ(r.tasks, static_cast<std::uint64_t>(dag.n_tasks()));
  EXPECT_GT(r.job.storage_stats.reads, 0U);
}

TEST(WfRuntime, MalformedPlansAreRejected) {
  const auto dag = wf::generate(gen_opts(wf::Shape::Diamond, 2));
  mpi::JobConfig cfg;
  cfg.platform = plat::dcc();
  wf::Plan plan;
  plan.workers = 2;
  plan.worker_of = {0, 1};  // wrong size (dag has 4 tasks)
  EXPECT_THROW(wf::run(dag, plan, cfg), std::invalid_argument);
  plan.worker_of = {0, 1, 2, 0};  // worker 2 out of range
  EXPECT_THROW(wf::run(dag, plan, cfg), std::invalid_argument);
  plan.worker_of.clear();
  plan.order = {0, 0, 1, 2};  // not a permutation
  EXPECT_THROW(wf::run(dag, plan, cfg), std::invalid_argument);
}

// The ext7 bench must serialise to a byte-identical manifest whether the
// sweep runs on 1 or 8 host workers and whether jobs run on 1 or 4 LPs —
// the same guarantee the paper suites carry.
TEST(WfBench, Ext7ManifestIsByteIdenticalAcrossJobsAndLp) {
  const auto* target = cirrus::bench::find_target("ext7");
  ASSERT_NE(target, nullptr);

  const auto manifest = [&](int jobs, int lp) {
    const int prev_lp = mpi::default_lp();
    mpi::set_default_lp(lp);
    const std::string jobs_str = std::to_string(jobs);
    const char* argv[] = {"ext7", "--jobs", jobs_str.c_str()};
    const core::Options opts(3, argv);
    valid::RunReport report;
    EXPECT_EQ(target->fn(opts, report), 0);
    mpi::set_default_lp(prev_lp);
    report.target = "ext7";
    report.host_ms = 0;  // the one host-dependent field
    valid::ManifestContext ctx;
    ctx.suite = "ext7-test";
    ctx.git_sha = "fixture";
    ctx.include_platforms = false;
    ctx.include_nondeterministic = false;
    return valid::manifest_json(ctx, {report}, {});
  };

  const std::string base = manifest(1, 1);
  EXPECT_EQ(base, manifest(8, 1));
  EXPECT_EQ(base, manifest(1, 4));
  EXPECT_NE(base.find("montage_makespan_s"), std::string::npos);
}
