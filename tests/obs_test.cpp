// Tests for the telemetry subsystem: registry semantics (series identity,
// label canonicalisation, kind clashes), log2 histogram bucket edges, the
// virtual-time sampler's cadence, global counter aggregation, and the
// headline determinism property — per-job counters and process-wide totals
// are byte-identical regardless of sweep worker count.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "mpi/minimpi.hpp"
#include "obs/sampler.hpp"
#include "obs/telemetry.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace {

using namespace cirrus;

// ---------------------------------------------------------------------------
// Histogram bucket edges

TEST(HistBucket, Log2EdgesAreExact) {
  EXPECT_EQ(obs::hist_bucket(0), 0);
  EXPECT_EQ(obs::hist_bucket(1), 0);
  EXPECT_EQ(obs::hist_bucket(2), 1);
  EXPECT_EQ(obs::hist_bucket(3), 1);
  EXPECT_EQ(obs::hist_bucket(4), 2);
  EXPECT_EQ(obs::hist_bucket(1023), 9);
  EXPECT_EQ(obs::hist_bucket(1024), 10);
  EXPECT_EQ(obs::hist_bucket((1ULL << 62) - 1), 61);
  EXPECT_EQ(obs::hist_bucket(1ULL << 62), 62);
  EXPECT_EQ(obs::hist_bucket(~0ULL), 62);  // clamped to the last bucket
}

TEST(HistBucket, UpperEdgesAreInclusive) {
  EXPECT_EQ(obs::hist_bucket_upper(0), 1ULL);
  EXPECT_EQ(obs::hist_bucket_upper(1), 3ULL);
  EXPECT_EQ(obs::hist_bucket_upper(9), 1023ULL);
  // Every value lands in the bucket whose upper edge bounds it.
  for (const std::uint64_t v : {0ULL, 1ULL, 2ULL, 7ULL, 4096ULL, 123456789ULL}) {
    const int b = obs::hist_bucket(v);
    EXPECT_LE(v, obs::hist_bucket_upper(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, obs::hist_bucket_upper(b - 1)) << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(Registry, SameSeriesSharesOneCell) {
  obs::MetricsRegistry reg;
  auto a = reg.counter("requests", {{"node", "0"}});
  auto b = reg.counter("requests", {{"node", "0"}});
  a.inc();
  b.inc(2);
  EXPECT_EQ(a.value(), 3U);
  EXPECT_EQ(reg.size(), 1U);
}

TEST(Registry, LabelsAreCanonicalisedByKey) {
  obs::MetricsRegistry reg;
  auto a = reg.counter("x", {{"b", "2"}, {"a", "1"}});
  auto b = reg.counter("x", {{"a", "1"}, {"b", "2"}});
  a.inc();
  b.inc();
  EXPECT_EQ(a.value(), 2U);
  EXPECT_EQ(reg.size(), 1U);
  EXPECT_EQ(obs::MetricsRegistry::series_id("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=\"1\",b=\"2\"}");
}

TEST(Registry, DuplicateLabelKeyThrows) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.counter("x", {{"k", "1"}, {"k", "2"}}), std::logic_error);
}

TEST(Registry, KindClashThrows) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  EXPECT_THROW(reg.gauge("x", {}, [] { return 0.0; }), std::logic_error);
}

TEST(Registry, DisabledHandlesAreSafeNoOps) {
  obs::Counter c;
  obs::Histogram h;
  c.inc();
  c.record_max(42);
  h.observe(7);
  EXPECT_FALSE(c.enabled());
  EXPECT_FALSE(h.enabled());
  EXPECT_EQ(c.value(), 0U);
  EXPECT_EQ(h.count(), 0U);
}

TEST(Registry, FreezeGaugesSnapshotsAndDetaches) {
  obs::MetricsRegistry reg;
  double live = 1.5;
  reg.gauge("depth", {}, [&live] { return live; });
  live = 4.0;
  reg.freeze_gauges();
  live = 99.0;  // must not show up: the poll fn was dropped at freeze time
  EXPECT_NE(reg.prometheus_text().find("depth 4\n"), std::string::npos)
      << reg.prometheus_text();
}

TEST(Registry, PrometheusTextShape) {
  obs::MetricsRegistry reg;
  reg.counter("events_total").inc(7);
  reg.gauge("queue_depth", {{"node", "1"}}, [] { return 2.5; });
  auto h = reg.histogram("bytes");
  h.observe(1);     // bucket 0 (le=1)
  h.observe(3);     // bucket 1 (le=3)
  h.observe(1000);  // bucket 9 (le=1023)
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE events_total counter\n"), std::string::npos) << text;
  EXPECT_NE(text.find("events_total 7\n"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos) << text;
  EXPECT_NE(text.find("queue_depth{node=\"1\"} 2.5\n"), std::string::npos) << text;
  // Cumulative buckets with inclusive upper edges, +Inf, _sum and _count.
  EXPECT_NE(text.find("bytes_bucket{le=\"1\"} 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes_bucket{le=\"3\"} 2\n"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes_bucket{le=\"1023\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes_bucket{le=\"+Inf\"} 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes_sum 1004\n"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes_count 3\n"), std::string::npos) << text;
}

TEST(Registry, CounterValuesIncludeHistogramTotals) {
  obs::MetricsRegistry reg;
  reg.counter("a").inc(5);
  auto h = reg.histogram("b");
  h.observe(10);
  const auto values = reg.counter_values();
  std::map<std::string, std::uint64_t> m(values.begin(), values.end());
  EXPECT_EQ(m.at("a"), 5U);
  EXPECT_EQ(m.at("b_count"), 1U);
  EXPECT_EQ(m.at("b_sum"), 10U);
}

// ---------------------------------------------------------------------------
// Sampler cadence

TEST(Sampler, RowsFollowVirtualTimeCadence) {
  sim::Engine engine;
  double depth = 0;
  obs::Sampler sampler;
  sampler.add_channel("depth", [&depth] { return depth; });
  // Simulated work: bump the gauge at 0.5 s and 2.5 s of virtual time.
  engine.schedule_after(sim::from_seconds(0.5), [&depth] { depth = 10; });
  engine.schedule_after(sim::from_seconds(2.5), [&depth] { depth = 20; });
  bool alive = true;
  engine.schedule_after(sim::from_seconds(3.25), [&alive] { alive = false; });
  sampler.install(engine, sim::from_seconds(1.0), [&alive] { return alive; });
  engine.run();

  // Baseline at t=0, ticks at 1 s, 2 s, 3 s, and the final row at 4 s (the
  // first tick after the job ends records once more, then stops re-arming).
  ASSERT_EQ(sampler.rows().size(), 5U);
  const std::vector<double> expect_t = {0, 1, 2, 3, 4};
  const std::vector<double> expect_v = {0, 10, 10, 20, 20};
  for (std::size_t i = 0; i < sampler.rows().size(); ++i) {
    EXPECT_DOUBLE_EQ(sim::to_seconds(sampler.rows()[i].t), expect_t[i]) << i;
    EXPECT_DOUBLE_EQ(sampler.rows()[i].values[0], expect_v[i]) << i;
  }
  const std::string csv = sampler.csv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "time_s,depth");
}

TEST(Sampler, NoChannelsOrZeroDtIsInert) {
  sim::Engine engine;
  obs::Sampler empty;
  empty.install(engine, sim::from_seconds(1.0), [] { return true; });
  obs::Sampler zero_dt;
  zero_dt.add_channel("x", [] { return 0.0; });
  zero_dt.install(engine, 0, [] { return true; });
  engine.run();  // returns immediately: neither sampler scheduled anything
  EXPECT_TRUE(empty.rows().empty());
  EXPECT_TRUE(zero_dt.rows().empty());
  EXPECT_EQ(zero_dt.csv(), "");
}

// ---------------------------------------------------------------------------
// Global counter aggregation

TEST(GlobalCounters, DiffTopOrdersAndTruncates) {
  const std::map<std::string, std::uint64_t> before = {{"a", 5}, {"b", 0}, {"c", 7}};
  const std::map<std::string, std::uint64_t> after = {
      {"a", 15}, {"b", 100}, {"c", 7}, {"d", 10}};
  const auto all = obs::GlobalCounters::diff_top(before, after, 0);
  // c's delta is zero: dropped. Ties (a and d, both +10) break by name.
  ASSERT_EQ(all.size(), 3U);
  EXPECT_EQ(all[0].first, "b");
  EXPECT_EQ(all[0].second, 100U);
  EXPECT_EQ(all[1].first, "a");
  EXPECT_EQ(all[2].first, "d");
  const auto top1 = obs::GlobalCounters::diff_top(before, after, 1);
  ASSERT_EQ(top1.size(), 1U);
  EXPECT_EQ(top1[0].first, "b");
}

// ---------------------------------------------------------------------------
// End-to-end determinism across sweep worker counts

mpi::JobConfig small_job(std::uint64_t seed) {
  mpi::JobConfig cfg;
  cfg.platform = plat::by_name("vayu");
  cfg.np = 8;
  cfg.seed = seed;
  cfg.name = "obs-determinism";
  cfg.telemetry.enabled = true;
  return cfg;
}

void ring_body(mpi::RankEnv& env) {
  auto& comm = env.world();
  std::vector<double> buf(512, env.rank());
  for (int iter = 0; iter < 10; ++iter) {
    env.compute(0.001);
    const int right = (comm.rank() + 1) % comm.size();
    const int left = (comm.rank() - 1 + comm.size()) % comm.size();
    comm.sendrecv(right, iter, buf.data(), buf.size(), left, iter, buf.data(), buf.size());
    comm.allreduce_one(static_cast<double>(iter), mpi::Op::Sum);
  }
}

TEST(Determinism, PerJobCountersMatchAcrossWorkerCounts) {
  constexpr std::size_t kJobs = 6;
  using Values = std::vector<std::pair<std::string, std::uint64_t>>;
  auto sweep = [&](int jobs) {
    return core::run_sweep<Values>(
        kJobs,
        [&](std::size_t i) {
          const auto r = mpi::run_job(small_job(/*seed=*/i + 1), ring_body);
          EXPECT_NE(r.telemetry, nullptr);
          return r.telemetry->registry.counter_values();
        },
        jobs);
  };
  const auto serial = sweep(1);
  const auto parallel = sweep(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
    EXPECT_FALSE(serial[i].empty());
  }
}

TEST(Determinism, GlobalTotalsMatchAcrossWorkerCounts) {
  constexpr std::size_t kJobs = 6;
  auto run_sweep_delta = [&](int jobs) {
    const auto before = obs::GlobalCounters::instance().snapshot();
    core::parallel_for(
        kJobs, [&](std::size_t i) { mpi::run_job(small_job(/*seed=*/i + 1), ring_body); },
        jobs);
    return obs::GlobalCounters::diff_top(before, obs::GlobalCounters::instance().snapshot(),
                                         0);
  };
  const auto serial = run_sweep_delta(1);
  const auto parallel = run_sweep_delta(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Determinism, TelemetryDoesNotPerturbEventStream) {
  // The master switch must be event-neutral: same job with and without
  // telemetry executes the identical number of simulator events.
  auto cfg = small_job(1);
  cfg.telemetry.enabled = false;
  const auto off = mpi::run_job(cfg, ring_body);
  cfg.telemetry.enabled = true;
  const auto on = mpi::run_job(cfg, ring_body);
  EXPECT_EQ(off.events_processed, on.events_processed);
  EXPECT_DOUBLE_EQ(off.elapsed_seconds, on.elapsed_seconds);
  // Registry's event counter agrees with the engine's fingerprint.
  const auto values = on.telemetry->registry.counter_values();
  const std::map<std::string, std::uint64_t> m(values.begin(), values.end());
  EXPECT_EQ(m.at("sim_events_total"), on.events_processed);
}

}  // namespace
