// Point-to-point semantics of minimpi: matching, ordering, protocols,
// non-blocking requests, model mode and deadlock detection.
#include "mpi/minimpi.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace mpi = cirrus::mpi;
namespace plat = cirrus::plat;

namespace {

mpi::JobConfig cfg(int np, const plat::Platform& p = plat::vayu()) {
  mpi::JobConfig c;
  c.platform = p;
  c.np = np;
  c.seed = 42;
  c.name = "p2p-test";
  return c;
}

}  // namespace

TEST(P2P, BlockingSendRecvDeliversData) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      std::vector<int> data(100);
      std::iota(data.begin(), data.end(), 7);
      c.send(1, 5, data.data(), data.size());
    } else {
      std::vector<int> data(100, -1);
      c.recv(0, 5, data.data(), data.size());
      for (int i = 0; i < 100; ++i) ASSERT_EQ(data[static_cast<std::size_t>(i)], 7 + i);
      env.report("ok", 1);
    }
  });
  EXPECT_EQ(r.values.at("ok"), 1);
  EXPECT_GT(r.elapsed_seconds, 0);
}

TEST(P2P, RecvBeforeSendWorks) {
  // The receiver posts first and blocks; the sender arrives later.
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 1) {
      double x = 0;
      c.recv(0, 1, &x, 1);
      env.report("x", x);
    } else {
      env.compute(0.001);  // the sender is late
      double x = 3.25;
      c.send(1, 1, &x, 1);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("x"), 3.25);
}

TEST(P2P, UnexpectedMessageIsBuffered) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      double x = 1.5;
      c.send(1, 9, &x, 1);
    } else {
      env.compute(0.01);  // let the message arrive before the recv posts
      double x = 0;
      c.recv(0, 9, &x, 1);
      env.report("x", x);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("x"), 1.5);
}

TEST(P2P, TagsSelectMessages) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      double a = 1, b = 2;
      c.send(1, 10, &a, 1);
      c.send(1, 20, &b, 1);
    } else {
      double a = 0, b = 0;
      c.recv(0, 20, &b, 1);  // out of arrival order, selected by tag
      c.recv(0, 10, &a, 1);
      env.report("a", a);
      env.report("b", b);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("a"), 1);
  EXPECT_DOUBLE_EQ(r.values.at("b"), 2);
}

TEST(P2P, AnySourceAndAnyTagMatch) {
  auto r = mpi::run_job(cfg(3), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() != 0) {
      double x = c.rank() * 10.0;
      c.send(0, c.rank(), &x, 1);
    } else {
      double sum = 0, x = 0;
      c.recv(mpi::kAnySource, mpi::kAnyTag, &x, 1);
      sum += x;
      c.recv(mpi::kAnySource, mpi::kAnyTag, &x, 1);
      sum += x;
      env.report("sum", sum);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("sum"), 30.0);
}

TEST(P2P, MessagesBetweenSamePairSameTagDoNotOvertake) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    constexpr int kN = 50;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        c.send(1, 3, &i, 1);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        c.recv(0, 3, &v, 1);
        ASSERT_EQ(v, i) << "message overtaking detected";
      }
      env.report("ok", 1);
    }
  });
  EXPECT_EQ(r.values.at("ok"), 1);
}

TEST(P2P, LargeMessageUsesRendezvousAndDeliversIntact) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    const std::size_t n = 1 << 20;  // 8 MB of doubles: far beyond eager
    if (c.rank() == 0) {
      std::vector<double> data(n);
      for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<double>(i % 1000) * 0.5;
      c.send(1, 1, data.data(), n);
    } else {
      std::vector<double> data(n, -1);
      c.recv(0, 1, data.data(), n);
      double checksum = 0;
      for (std::size_t i = 0; i < n; i += 997) checksum += data[i];
      env.report("checksum", checksum);
      double expect = 0;
      for (std::size_t i = 0; i < n; i += 997) expect += static_cast<double>(i % 1000) * 0.5;
      env.report("expect", expect);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("checksum"), r.values.at("expect"));
}

TEST(P2P, RendezvousSenderBlocksUntilReceiverArrives) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    const std::size_t big = 4 << 20;
    const std::size_t small = 16;
    if (c.rank() == 0) {
      c.send_bytes(1, 2, nullptr, small);  // eager: completes immediately
      env.report("eager_done", env.now_seconds());
      c.send_bytes(1, 1, nullptr, big);  // rendezvous: blocks for the receiver
      env.report("rendezvous_done", env.now_seconds());
    } else {
      env.compute(0.5);  // receiver shows up late (in reference seconds)
      const double arrived = env.now_seconds();
      env.report("receiver_arrived", arrived);
      c.recv_bytes(0, 1, nullptr, big);
      c.recv_bytes(0, 2, nullptr, small);
    }
  });
  // Eager completes long before the receiver arrives; rendezvous cannot.
  EXPECT_LT(r.values.at("eager_done"), 0.01);
  EXPECT_GT(r.values.at("rendezvous_done"), r.values.at("receiver_arrived"));
}

TEST(P2P, IsendIrecvWaitall) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      std::vector<double> a(10, 1.0), b(10, 2.0);
      std::array<mpi::Request, 2> reqs{c.isend(1, 1, a.data(), 10),
                                       c.isend(1, 2, b.data(), 10)};
      c.waitall(reqs);
    } else {
      std::vector<double> a(10), b(10);
      std::array<mpi::Request, 2> reqs{c.irecv(0, 2, b.data(), 10),
                                       c.irecv(0, 1, a.data(), 10)};
      c.waitall(reqs);
      env.report("a0", a[0]);
      env.report("b0", b[0]);
    }
  });
  EXPECT_DOUBLE_EQ(r.values.at("a0"), 1.0);
  EXPECT_DOUBLE_EQ(r.values.at("b0"), 2.0);
}

TEST(P2P, SendrecvExchanges) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    double mine = c.rank() + 1.0, theirs = 0.0;
    const int other = 1 - c.rank();
    c.sendrecv(other, 7, &mine, 1, other, 7, &theirs, 1);
    env.report("r" + std::to_string(c.rank()), theirs);
  });
  EXPECT_DOUBLE_EQ(r.values.at("r0"), 2.0);
  EXPECT_DOUBLE_EQ(r.values.at("r1"), 1.0);
}

TEST(P2P, ModelModeNullBuffersMoveTimeNotData) {
  auto r = mpi::run_job(cfg(2), [](mpi::RankEnv& env) {
    auto& c = env.world();
    if (c.rank() == 0) {
      c.send_bytes(1, 1, nullptr, 1 << 20);
    } else {
      c.recv_bytes(0, 1, nullptr, 1 << 20);
    }
  });
  // A 1 MB transfer over QDR IB takes ~0.3 ms of virtual time.
  EXPECT_GT(r.elapsed_seconds, 1e-4);
  EXPECT_LT(r.elapsed_seconds, 1e-2);
}

TEST(P2P, MissingSenderDeadlocks) {
  EXPECT_THROW(mpi::run_job(cfg(2),
                            [](mpi::RankEnv& env) {
                              if (env.rank() == 1) {
                                double x;
                                env.world().recv(0, 1, &x, 1);
                              }
                            }),
               cirrus::sim::DeadlockError);
}

TEST(P2P, TimeIsDeterministicAcrossRuns) {
  auto body = [](mpi::RankEnv& env) {
    auto& c = env.world();
    std::vector<double> buf(1000, env.rank());
    for (int iter = 0; iter < 5; ++iter) {
      env.compute(0.001);
      const int other = 1 - c.rank();
      c.sendrecv(other, iter, buf.data(), buf.size(), other, iter, buf.data(), buf.size());
    }
  };
  const auto a = mpi::run_job(cfg(2, plat::dcc()), body);
  const auto b = mpi::run_job(cfg(2, plat::dcc()), body);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

TEST(P2P, InterNodeSlowerThanIntraNode) {
  auto time_with = [](int dst) {
    auto c2 = cfg(16, plat::dcc());
    auto r = mpi::run_job(c2, [dst](mpi::RankEnv& env) {
      auto& c = env.world();
      std::vector<double> buf(8192);
      // rank0 <-> dst ping-pong (dst 1: same node; dst 8: across GigE)
      for (int i = 0; i < 10; ++i) {
        if (c.rank() == 0) {
          c.send(dst, i, buf.data(), buf.size());
          c.recv(dst, i, buf.data(), buf.size());
        } else if (c.rank() == dst) {
          c.recv(0, i, buf.data(), buf.size());
          c.send(0, i, buf.data(), buf.size());
        }
      }
    });
    return r.elapsed_seconds;
  };
  EXPECT_GT(time_with(8), 3 * time_with(1));
}
