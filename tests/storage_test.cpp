// Unit tests for the pluggable shared-storage backends (src/storage).
//
// The load-bearing property: the NFS backend must reproduce the legacy
// net::FileSystem arithmetic bit for bit — every determinism golden and
// reference pin in the repo was minted against that model.
#include "storage/storage.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/metum/metum.hpp"
#include "mpi/minimpi.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace mpi = cirrus::mpi;
namespace net = cirrus::net;
namespace plat = cirrus::plat;
namespace sim = cirrus::sim;
namespace storage = cirrus::storage;

TEST(StorageModel, BackendStringsRoundTrip) {
  EXPECT_EQ(storage::backend_from_string("nfs"), storage::Backend::Nfs);
  EXPECT_EQ(storage::backend_from_string("Lustre"), storage::Backend::Lustre);
  EXPECT_EQ(storage::backend_from_string("object"), storage::Backend::Object);
  EXPECT_EQ(storage::backend_from_string("s3"), storage::Backend::Object);
  EXPECT_THROW(storage::backend_from_string("gpfs"), std::invalid_argument);
  EXPECT_STREQ(storage::to_string(storage::Backend::Nfs), "nfs");
  EXPECT_STREQ(storage::to_string(storage::Backend::Lustre), "lustre");
  EXPECT_STREQ(storage::to_string(storage::Backend::Object), "object");
}

TEST(StorageModel, NfsModelMirrorsPlatformFsScalars) {
  for (const auto& p : plat::study_platforms()) {
    const auto m = storage::model_for(p, storage::Backend::Nfs);
    EXPECT_EQ(m.name, p.fs.name);
    EXPECT_EQ(m.read_Bps, p.fs.read_Bps);
    EXPECT_EQ(m.write_Bps, p.fs.write_Bps);
    EXPECT_EQ(m.open_latency_ms, p.fs.open_latency_ms);
    EXPECT_EQ(m.servers, 1);
  }
}

// The crossbar-equivalence pin: an arbitrary interleaving of reads, writes
// and opens must complete at exactly the same integer nanoseconds as the
// legacy single-server FileSystem, including the queueing behaviour.
TEST(StorageService, NfsIsBitIdenticalToLegacyFileSystem) {
  for (const auto& p : plat::study_platforms()) {
    sim::Engine eng_legacy, eng_nfs;
    net::FileSystem legacy(eng_legacy, p.fs);
    storage::Service nfs(eng_nfs, storage::model_for(p, storage::Backend::Nfs));

    const struct {
      sim::SimTime at;
      std::size_t bytes;
      bool write, open;
    } ops[] = {
        {0, 4096, false, true},         {0, 1 << 20, true, false},
        {1000, 0, false, true},         {2'000'000, 64 << 20, false, false},
        {2'000'000, 512, true, true},   {50'000'000, 123457, false, false},
        {3'000'000'000, 1, true, true}, {3'000'000'001, 8 << 20, false, true},
    };
    for (const auto& op : ops) {
      const sim::SimTime a = op.write ? legacy.write_at(op.at, op.bytes, op.open)
                                      : legacy.read_at(op.at, op.bytes, op.open);
      const sim::SimTime b = op.write ? nfs.write_at(op.at, op.bytes, op.open)
                                      : nfs.read_at(op.at, op.bytes, op.open);
      EXPECT_EQ(a, b) << p.name << " bytes=" << op.bytes;
    }
  }
}

TEST(StorageService, StatsCountOperationsAndBytes) {
  sim::Engine eng;
  storage::Service svc(eng, storage::model_for(plat::dcc(), storage::Backend::Nfs));
  svc.read_at(0, 1000, true);
  svc.write_at(0, 500, false);
  svc.read_at(0, 200, true);
  const auto& s = svc.stats();
  EXPECT_EQ(s.reads, 2U);
  EXPECT_EQ(s.writes, 1U);
  EXPECT_EQ(s.opens, 2U);
  EXPECT_EQ(s.bytes_read, 1200U);
  EXPECT_EQ(s.bytes_written, 500U);
  EXPECT_GT(s.busy, 0);
}

// One stripe-sized request touches one OSS; a request spanning all servers
// finishes faster than the single-server NFS would serve it.
TEST(StorageService, LustreStripesAcrossServers) {
  const auto p = plat::vayu();
  sim::Engine eng;
  const auto model = storage::model_for(p, storage::Backend::Lustre);
  ASSERT_GT(model.servers, 1);
  storage::Service lustre(eng, model);

  const std::size_t big = model.stripe_bytes * static_cast<std::size_t>(model.servers);
  const sim::SimTime striped = lustre.read_at(0, big, false);
  // All stripes run in parallel: total time ~ one stripe's serialisation,
  // far below big/one-server-bandwidth.
  const sim::SimTime serial = sim::from_seconds(static_cast<double>(big) / model.read_Bps);
  EXPECT_LT(striped, serial / 2);
}

TEST(StorageService, LustreOpenPaysMdsOnce) {
  const auto p = plat::vayu();
  sim::Engine eng;
  const auto model = storage::model_for(p, storage::Backend::Lustre);
  storage::Service lustre(eng, model);
  const sim::SimTime no_open = lustre.read_at(0, 0, false);
  EXPECT_EQ(no_open, 0);
  storage::Service fresh(eng, model);
  const sim::SimTime with_open = fresh.read_at(0, 0, true);
  EXPECT_EQ(with_open, sim::from_seconds(model.open_latency_ms * 1e-3));
}

// Every object request pays the first-byte latency; independent requests
// spread over the front ends instead of queueing on one server.
TEST(StorageService, ObjectStorePaysPerRequestLatencyButScalesOut) {
  const auto p = plat::ec2();
  sim::Engine eng;
  const auto model = storage::model_for(p, storage::Backend::Object);
  storage::Service object(eng, model);

  const sim::SimTime first = object.read_at(0, 0, false);
  EXPECT_EQ(first, sim::from_seconds(model.open_latency_ms * 1e-3));

  // n_servers concurrent requests at t=0 all finish at the same time (one
  // per front end); request n_servers+1 queues behind the least loaded.
  storage::Service fresh(eng, model);
  const std::size_t bytes = 1 << 20;
  sim::SimTime done = 0;
  for (int i = 0; i < model.servers; ++i) done = fresh.read_at(0, bytes, false);
  const sim::SimTime one = sim::from_seconds(model.open_latency_ms * 1e-3) +
                           sim::from_seconds(static_cast<double>(bytes) / model.read_Bps);
  EXPECT_EQ(done, one);
  EXPECT_EQ(fresh.read_at(0, bytes, false), 2 * one);
}

// Job-level sanity on a workload with real file I/O (MetUM reads its start
// dump through the shared filesystem): each backend is deterministic across
// LP counts, and swapping the backend genuinely moves I/O completion times.
TEST(StorageService, JobLevelBackendSwapIsDeterministic) {
  const auto run = [](storage::Backend b, int lp) {
    mpi::JobConfig cfg;
    cfg.platform = plat::dcc();
    cfg.np = 4;
    cfg.seed = 7;
    cfg.execute = false;
    cfg.traits = cirrus::metum::traits();
    cfg.storage_backend = b;
    cfg.lp = lp;
    return mpi::run_job(cfg, [](mpi::RankEnv& env) { cirrus::metum::run(env); });
  };
  std::map<storage::Backend, double> elapsed;
  for (const auto b :
       {storage::Backend::Nfs, storage::Backend::Lustre, storage::Backend::Object}) {
    const auto lp1 = run(b, 1);
    const auto lp4 = run(b, 4);
    EXPECT_EQ(lp1.events_processed, lp4.events_processed) << storage::to_string(b);
    EXPECT_EQ(lp1.elapsed_seconds, lp4.elapsed_seconds) << storage::to_string(b);
    EXPECT_EQ(lp1.storage_stats.reads, lp4.storage_stats.reads);
    EXPECT_EQ(lp1.storage_stats.busy, lp4.storage_stats.busy);
    EXPECT_GT(lp1.storage_stats.reads, 0U);
    elapsed[b] = lp1.elapsed_seconds;
  }
  // The object store's per-request latency is paid on every dump read.
  EXPECT_NE(elapsed[storage::Backend::Nfs], elapsed[storage::Backend::Object]);
}
