// Parameterised property sweeps over the NPB kernels: every genuine kernel
// must verify and produce rank-count-invariant results at every valid np,
// in both protocol regimes; class W spot checks guard against class-S-only
// correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "npb/npb.hpp"

namespace npb = cirrus::npb;
namespace plat = cirrus::plat;

namespace {

cirrus::mpi::JobResult run(const std::string& name, npb::Class cls, int np) {
  return npb::run_benchmark(name, cls, plat::vayu(), np, /*execute=*/true, /*seed=*/11);
}

/// The scalar each kernel reports for invariance checks.
const char* key_of(const std::string& name) {
  if (name == "EP") return "ep_sx";
  if (name == "IS") return "is_key_sum";
  if (name == "CG") return "cg_zeta";
  if (name == "MG") return "mg_rnorm";
  if (name == "BT") return "bt_rnorm";
  if (name == "SP") return "sp_rnorm";
  if (name == "LU") return "lu_rnorm";
  return "ft_chk_re_1";
}

/// Relative tolerance. IS sums integers (exact in doubles regardless of
/// association); the solvers' per-element math is decomposition-invariant
/// but the *residual reductions* reassociate across np (last-ulp, 1e-12);
/// CG/FT/MG have longer FP dependency chains (1e-6).
double tol_of(const std::string& name) {
  if (name == "IS") return 0.0;
  if (name == "EP" || name == "BT" || name == "SP" || name == "LU") return 1e-12;
  return 1e-6;
}

struct Case {
  const char* bench;
  int np;
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  return std::string(info.param.bench) + "_np" + std::to_string(info.param.np);
}

class KernelSweep : public ::testing::TestWithParam<Case> {};

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSweep,
    ::testing::Values(Case{"EP", 2}, Case{"EP", 8}, Case{"IS", 2}, Case{"IS", 8},
                      Case{"CG", 2}, Case{"CG", 8}, Case{"FT", 2}, Case{"FT", 8},
                      Case{"MG", 2}, Case{"MG", 4}, Case{"BT", 4}, Case{"BT", 9},
                      Case{"BT", 16}, Case{"SP", 4}, Case{"SP", 9}, Case{"LU", 2},
                      Case{"LU", 8}, Case{"LU", 16}),
    case_name);

}  // namespace

TEST_P(KernelSweep, VerifiesAndMatchesSerialResult) {
  const auto [bench, np] = GetParam();
  const auto serial = run(bench, npb::Class::T, 1);
  const auto parallel = run(bench, npb::Class::T, np);
  EXPECT_EQ(parallel.values.at("verified"), 1.0) << bench << " np=" << np;
  const char* key = key_of(bench);
  const double a = serial.values.at(key);
  const double b = parallel.values.at(key);
  const double tol = tol_of(bench);
  if (tol == 0.0) {
    EXPECT_EQ(a, b) << bench << " np=" << np << " (" << key << ")";
  } else {
    EXPECT_NEAR(a, b, tol * std::abs(a) + 1e-12) << bench << " np=" << np;
  }
}

TEST_P(KernelSweep, AllRendezvousProtocolGivesSameAnswer) {
  const auto [bench, np] = GetParam();
  const auto& info = npb::benchmark(bench);
  auto job = npb::make_job(info, npb::Class::T, plat::vayu(), np, /*execute=*/true, 11);
  job.eager_threshold_bytes = 0;  // force every message through rendezvous
  auto r = cirrus::mpi::run_job(
      job, [&info](cirrus::mpi::RankEnv& env) { info.fn(env, npb::Class::T); });
  const auto eager = run(bench, npb::Class::T, np);
  // The protocol changes delivery timing, never data or operation order:
  // results must be bit-identical to the eager run.
  EXPECT_EQ(r.values.at(key_of(bench)), eager.values.at(key_of(bench)))
      << bench << " np=" << np;
}

// ------------------------------------------------------- class W spot checks
TEST(NpbClassW, CgZetaMatchesPublishedValue) {
  const auto r = npb::run_benchmark("CG", npb::Class::W, plat::vayu(), 4, true);
  EXPECT_NEAR(r.values.at("cg_zeta"), 10.362595087124, 1e-9);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

TEST(NpbClassW, EpVerifies) {
  const auto r = npb::run_benchmark("EP", npb::Class::W, plat::vayu(), 8, true);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

TEST(NpbClassW, IsVerifies) {
  const auto r = npb::run_benchmark("IS", npb::Class::W, plat::vayu(), 8, true);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

TEST(NpbClassW, FtRectangularGridInvariant) {
  // Class W is 128x128x32 — the only non-cubic FT grid; exercises the
  // transpose bookkeeping for nx != nz.
  const auto r1 = npb::run_benchmark("FT", npb::Class::W, plat::vayu(), 1, true);
  const auto r4 = npb::run_benchmark("FT", npb::Class::W, plat::vayu(), 4, true);
  EXPECT_EQ(r1.values.at("verified"), 1.0);
  EXPECT_EQ(r4.values.at("verified"), 1.0);
  EXPECT_NEAR(r1.values.at("ft_chk_re_1"), r4.values.at("ft_chk_re_1"),
              1e-7 * std::abs(r1.values.at("ft_chk_re_1")));
}

TEST(NpbClassW, MgResidualInvariantAt8Ranks) {
  const auto r1 = npb::run_benchmark("MG", npb::Class::S, plat::vayu(), 1, true);
  const auto r8 = npb::run_benchmark("MG", npb::Class::S, plat::vayu(), 8, true);
  EXPECT_NEAR(r1.values.at("mg_rnorm"), r8.values.at("mg_rnorm"),
              1e-6 * std::abs(r1.values.at("mg_rnorm")) + 1e-12);
}

TEST(NpbClassW, LuClassWRunsAndConverges) {
  const auto r = npb::run_benchmark("LU", npb::Class::W, plat::vayu(), 4, true);
  EXPECT_EQ(r.values.at("verified"), 1.0);
  EXPECT_GT(r.values.at("lu_rnorm"), 0.0);
}
