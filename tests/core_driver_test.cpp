// The deterministic parallel experiment driver: full index coverage, stable
// result order, serial/parallel equivalence on real simulations, and
// lowest-index exception propagation.
#include "core/driver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "mpi/minimpi.hpp"

namespace core = cirrus::core;
namespace mpi = cirrus::mpi;
namespace plat = cirrus::plat;

TEST(Driver, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  core::parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Driver, ZeroAndOneSizedSweeps) {
  core::parallel_for(0, [](std::size_t) { FAIL(); }, 8);
  int calls = 0;
  core::parallel_for(1, [&](std::size_t) { ++calls; }, 8);
  EXPECT_EQ(calls, 1);
}

TEST(Driver, ResultsInStableIndexOrder) {
  const auto out = core::run_sweep<std::size_t>(
      257, [](std::size_t i) { return i * i; }, 5);
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Driver, ParallelSimulationsMatchSerialBitForBit) {
  // Each sweep point is an independent deterministic simulation; the driver
  // must produce the same doubles for any worker count.
  const auto point = [](std::size_t i) {
    mpi::JobConfig cfg;
    cfg.platform = plat::vayu();
    cfg.np = 2 + static_cast<int>(i % 3);
    cfg.seed = 10 + i;
    cfg.name = "driver-test";
    return mpi::run_job(cfg, [](mpi::RankEnv& env) {
              auto& c = env.world();
              double x = c.rank();
              double sum = 0;
              for (int k = 0; k < 5; ++k) c.allreduce(&x, &sum, 1, mpi::Op::Sum);
              env.compute(0.0001);
              c.barrier();
            })
        .elapsed_seconds;
  };
  const auto serial = core::run_sweep<double>(12, point, 1);
  const auto parallel = core::run_sweep<double>(12, point, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "sweep point " << i;
  }
}

TEST(Driver, LowestIndexExceptionWins) {
  // Multiple bodies throw; the rethrown exception must be the lowest-index
  // one, exactly as a serial loop would surface, for any worker count.
  for (int jobs : {1, 4}) {
    try {
      core::parallel_for(
          100,
          [](std::size_t i) {
            if (i == 17 || i == 3 || i == 90) {
              throw std::runtime_error("boom " + std::to_string(i));
            }
          },
          jobs);
      FAIL() << "expected an exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom 3") << "jobs=" << jobs;
    }
  }
}

TEST(Driver, DefaultParallelismIsPositive) {
  EXPECT_GE(core::default_parallelism(), 1);
}

TEST(Driver, LabeledSweepKeepsLabelsWithValuesInIndexOrder) {
  // Labels travel with their sweep point, so a table rendered from the
  // result vector names each configuration correctly at any worker count.
  const auto f = [](std::size_t i) {
    return core::Labeled<int>{"point-" + std::to_string(i), static_cast<int>(i) * 10};
  };
  const auto serial = core::run_sweep_labeled<int>(23, f, 1);
  const auto parallel = core::run_sweep_labeled<int>(23, f, 4);
  ASSERT_EQ(serial.size(), 23u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].label, "point-" + std::to_string(i));
    EXPECT_EQ(serial[i].value, static_cast<int>(i) * 10);
    EXPECT_EQ(parallel[i].label, serial[i].label);
    EXPECT_EQ(parallel[i].value, serial[i].value);
  }
}
