// Correctness tests for the NPB kernels: verification in execute mode,
// rank-count invariance of results (the key property: the same answer no
// matter how the work is decomposed), and model-mode behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "npb/npb.hpp"

namespace npb = cirrus::npb;
namespace plat = cirrus::plat;

namespace {

/// Runs a benchmark in execute mode on vayu and returns the job result.
cirrus::mpi::JobResult run(const std::string& name, npb::Class cls, int np,
                           bool execute = true) {
  return npb::run_benchmark(name, cls, plat::vayu(), np, execute, /*seed=*/7);
}

}  // namespace

TEST(NpbRegistry, HasAllEightBenchmarks) {
  const auto& all = npb::all_benchmarks();
  ASSERT_EQ(all.size(), 8u);
  EXPECT_EQ(all[0].name, "BT");
  EXPECT_EQ(all[7].name, "SP");
  EXPECT_THROW(npb::benchmark("XX"), std::invalid_argument);
}

TEST(NpbRegistry, ClassBReferenceTimesMatchPaperFig3) {
  EXPECT_DOUBLE_EQ(npb::benchmark("BT").ref_seconds(npb::Class::B), 1696.9);
  EXPECT_DOUBLE_EQ(npb::benchmark("EP").ref_seconds(npb::Class::B), 141.5);
  EXPECT_DOUBLE_EQ(npb::benchmark("CG").ref_seconds(npb::Class::B), 244.9);
  EXPECT_DOUBLE_EQ(npb::benchmark("FT").ref_seconds(npb::Class::B), 327.6);
  EXPECT_DOUBLE_EQ(npb::benchmark("IS").ref_seconds(npb::Class::B), 8.6);
  EXPECT_DOUBLE_EQ(npb::benchmark("LU").ref_seconds(npb::Class::B), 1514.7);
  EXPECT_DOUBLE_EQ(npb::benchmark("MG").ref_seconds(npb::Class::B), 72.0);
  EXPECT_DOUBLE_EQ(npb::benchmark("SP").ref_seconds(npb::Class::B), 1936.1);
}

TEST(NpbRegistry, ClassParsing) {
  EXPECT_EQ(npb::class_from_char('B'), npb::Class::B);
  EXPECT_EQ(npb::class_from_char('s'), npb::Class::S);
  EXPECT_THROW(npb::class_from_char('Z'), std::invalid_argument);
  EXPECT_EQ(npb::to_char(npb::Class::W), 'W');
}

// ---------------------------------------------------------------------- EP
TEST(NpbEp, ClassTVerifiesSerial) {
  const auto r = run("EP", npb::Class::T, 1);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

TEST(NpbEp, ResultsIndependentOfRankCount) {
  const auto r1 = run("EP", npb::Class::T, 1);
  const auto r4 = run("EP", npb::Class::T, 4);
  // EP's batch seeking makes sums bit-identical across np.
  EXPECT_DOUBLE_EQ(r1.values.at("ep_sx"), r4.values.at("ep_sx"));
  EXPECT_DOUBLE_EQ(r1.values.at("ep_sy"), r4.values.at("ep_sy"));
  EXPECT_DOUBLE_EQ(r1.values.at("ep_q1"), r4.values.at("ep_q1"));
}

TEST(NpbEp, ClassSVerifiesOn4Ranks) {
  const auto r = run("EP", npb::Class::S, 4);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

TEST(NpbEp, NearPerfectScaling) {
  const auto r1 = run("EP", npb::Class::S, 1, /*execute=*/false);
  const auto r8 = run("EP", npb::Class::S, 8, /*execute=*/false);
  EXPECT_GT(r1.elapsed_seconds / r8.elapsed_seconds, 6.0);
}

// ---------------------------------------------------------------------- IS
TEST(NpbIs, ClassTSortsAndVerifies) {
  for (int np : {1, 2, 4}) {
    const auto r = run("IS", npb::Class::T, np);
    EXPECT_EQ(r.values.at("verified"), 1.0) << "np=" << np;
  }
}

TEST(NpbIs, KeySumInvariantAcrossRankCounts) {
  const auto r1 = run("IS", npb::Class::T, 1);
  const auto r2 = run("IS", npb::Class::T, 2);
  const auto r4 = run("IS", npb::Class::T, 4);
  EXPECT_DOUBLE_EQ(r1.values.at("is_key_sum"), r2.values.at("is_key_sum"));
  EXPECT_DOUBLE_EQ(r1.values.at("is_key_sum"), r4.values.at("is_key_sum"));
}

TEST(NpbIs, ClassSVerifies) {
  const auto r = run("IS", npb::Class::S, 4);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

// ---------------------------------------------------------------------- CG
TEST(NpbCg, ClassSZetaMatchesPublishedNpbValue) {
  const auto r = run("CG", npb::Class::S, 1);
  // NPB 3.3 class S verification value.
  EXPECT_NEAR(r.values.at("cg_zeta"), 8.5971775078648, 1e-9);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

TEST(NpbCg, ClassSZetaIndependentOfRankCount) {
  const auto r1 = run("CG", npb::Class::S, 1);
  for (int np : {2, 4, 8}) {
    const auto r = run("CG", npb::Class::S, np);
    EXPECT_NEAR(r.values.at("cg_zeta"), r1.values.at("cg_zeta"), 1e-10) << "np=" << np;
    EXPECT_EQ(r.values.at("verified"), 1.0) << "np=" << np;
  }
}

TEST(NpbCg, ClassTSelfConsistent) {
  const auto r1 = run("CG", npb::Class::T, 1);
  const auto r4 = run("CG", npb::Class::T, 4);
  EXPECT_NEAR(r1.values.at("cg_zeta"), r4.values.at("cg_zeta"), 1e-10);
  EXPECT_GT(r1.values.at("cg_zeta"), 0.0);
}

// ---------------------------------------------------------------------- FT
TEST(NpbFt, ClassTChecksumsInvariantAcrossRankCounts) {
  const auto r1 = run("FT", npb::Class::T, 1);
  const auto r4 = run("FT", npb::Class::T, 4);
  EXPECT_EQ(r1.values.at("verified"), 1.0);
  EXPECT_EQ(r4.values.at("verified"), 1.0);
  for (int it = 1; it <= 4; ++it) {
    const auto key = "ft_chk_re_" + std::to_string(it);
    EXPECT_NEAR(r1.values.at(key), r4.values.at(key),
                1e-7 * std::abs(r1.values.at(key)) + 1e-9)
        << key;
  }
}

TEST(NpbFt, ChecksumsDecayOverIterations) {
  // The evolution factors are a decaying Gaussian filter; spectral energy
  // (and generally the checksum magnitude drift) must stay bounded.
  const auto r = run("FT", npb::Class::T, 2);
  EXPECT_EQ(r.values.at("verified"), 1.0);
  EXPECT_TRUE(std::isfinite(r.values.at("ft_chk_re_4")));
}

TEST(NpbFt, RejectsNonPowerOfTwoNp) {
  EXPECT_THROW(run("FT", npb::Class::T, 3), std::invalid_argument);
}

// ---------------------------------------------------------------------- MG
TEST(NpbMg, ResidualDropsAndVerifies) {
  for (int np : {1, 2, 8}) {
    const auto r = run("MG", npb::Class::T, np);
    EXPECT_EQ(r.values.at("verified"), 1.0) << "np=" << np;
  }
}

TEST(NpbMg, ResidualInvariantAcrossRankCounts) {
  const auto r1 = run("MG", npb::Class::T, 1);
  const auto r8 = run("MG", npb::Class::T, 8);
  EXPECT_NEAR(r1.values.at("mg_rnorm"), r8.values.at("mg_rnorm"),
              1e-9 + 1e-6 * std::abs(r1.values.at("mg_rnorm")));
}

TEST(NpbMg, ClassSVerifies) {
  const auto r = run("MG", npb::Class::S, 4);
  EXPECT_EQ(r.values.at("verified"), 1.0);
}

// ------------------------------------------------------------------ BT/SP
TEST(NpbBt, RunsAndResidualInvariant) {
  const auto r1 = run("BT", npb::Class::T, 1);
  const auto r4 = run("BT", npb::Class::T, 4);
  EXPECT_EQ(r1.values.at("verified"), 1.0);
  EXPECT_NEAR(r1.values.at("bt_rnorm"), r4.values.at("bt_rnorm"),
              1e-8 + 1e-6 * std::abs(r1.values.at("bt_rnorm")));
}

TEST(NpbBt, RejectsNonSquareNp) {
  EXPECT_THROW(run("BT", npb::Class::T, 2), std::invalid_argument);
}

TEST(NpbSp, RunsAndResidualInvariant) {
  const auto r1 = run("SP", npb::Class::T, 1);
  const auto r4 = run("SP", npb::Class::T, 4);
  EXPECT_EQ(r4.values.at("verified"), 1.0);
  EXPECT_NEAR(r1.values.at("sp_rnorm"), r4.values.at("sp_rnorm"),
              1e-8 + 1e-6 * std::abs(r1.values.at("sp_rnorm")));
}

// ---------------------------------------------------------------------- LU
TEST(NpbLu, RunsAndResidualInvariant) {
  const auto r1 = run("LU", npb::Class::T, 1);
  const auto r4 = run("LU", npb::Class::T, 4);
  EXPECT_EQ(r4.values.at("verified"), 1.0);
  EXPECT_NEAR(r1.values.at("lu_rnorm"), r4.values.at("lu_rnorm"),
              1e-8 + 1e-6 * std::abs(r1.values.at("lu_rnorm")));
}

TEST(NpbLu, SsorResidualShrinks) {
  // The relaxation converges: later-iteration updates are smaller.
  const auto r = run("LU", npb::Class::T, 4);
  EXPECT_LT(r.values.at("lu_rnorm"), 10.0);
  EXPECT_GT(r.values.at("lu_rnorm"), 0.0);
}

// ----------------------------------------------------------------- model
TEST(NpbModel, ModelModeIsCheapAndTimesLikeExecuteMode) {
  // Model mode must produce comparable virtual time without doing the math.
  const auto exec = run("IS", npb::Class::T, 4, /*execute=*/true);
  const auto model = run("IS", npb::Class::T, 4, /*execute=*/false);
  EXPECT_NEAR(model.elapsed_seconds / exec.elapsed_seconds, 1.0, 0.35);
}

TEST(NpbModel, SerialClassBElapsedMatchesCalibration) {
  // On DCC, one-rank class B model runs must land near the paper's Fig 3
  // absolute times (the calibration anchor). IS is the cheapest to check.
  auto r = npb::run_benchmark("IS", npb::Class::B, plat::dcc(), 1, /*execute=*/false);
  EXPECT_NEAR(r.elapsed_seconds, 8.6, 1.0);
}

TEST(NpbModel, SpeedupEmergesOnVayu) {
  const auto r1 = npb::run_benchmark("MG", npb::Class::A, plat::vayu(), 1, false);
  const auto r8 = npb::run_benchmark("MG", npb::Class::A, plat::vayu(), 8, false);
  const double speedup = r1.elapsed_seconds / r8.elapsed_seconds;
  EXPECT_GT(speedup, 3.0);
  EXPECT_LT(speedup, 8.5);
}
