// Runs the MetUM global atmosphere proxy — the paper's N320L70 forecast —
// on a chosen platform and rank count, printing the section profile.
//
//   ./build/examples/climate_forecast [platform=vayu] [np=32] [ranks_per_node=-1]
//
// Try:
//   ./build/examples/climate_forecast vayu 32
//   ./build/examples/climate_forecast dcc  32
//   ./build/examples/climate_forecast ec2  32 8     # the paper's "EC2-4"
#include <cstdio>
#include <cstdlib>

#include "apps/metum/metum.hpp"

int main(int argc, char** argv) {
  using namespace cirrus;
  const std::string platform_name = argc > 1 ? argv[1] : "vayu";
  const int np = argc > 2 ? std::atoi(argv[2]) : 32;
  const int rpn = argc > 3 ? std::atoi(argv[3]) : -1;

  mpi::JobConfig cfg;
  cfg.platform = plat::by_name(platform_name);
  cfg.np = np;
  cfg.max_ranks_per_node = rpn;
  cfg.traits = metum::traits();
  cfg.execute = false;  // full paper-scale pattern
  cfg.name = "metum-forecast";

  std::printf("MetUM N320L70, 18 timesteps, %d ranks on %s%s\n", np, platform_name.c_str(),
              rpn > 0 ? (" (" + std::to_string(rpn) + " ranks/node)").c_str() : "");
  auto result = mpi::run_job(cfg, [](mpi::RankEnv& env) { metum::run(env); });

  std::printf("forecast walltime: %.0f s virtual (warmed: %.0f s)\n", result.elapsed_seconds,
              result.values.at("um_warmed_seconds"));
  std::fputs(result.ipm.text_summary("MetUM").c_str(), stdout);

  std::puts("\nper-rank ATM_STEP balance (comp seconds):");
  for (const auto& row : result.ipm.rank_breakdown("ATM_STEP")) {
    std::printf("  rank %2d: %6.1f s %s\n", row.rank, row.comp_s,
                std::string(static_cast<std::size_t>(row.comp_s /
                                                     result.elapsed_seconds * 120),
                            '#')
                    .c_str());
  }
  return 0;
}
