// cirrus_bench: unified runner for every paper table/figure and extension
// bench, with paper-fidelity checking and a machine-readable run manifest.
//
//   cirrus_bench --list                     # what can run
//   cirrus_bench --list-targets             # + generation coverage, sorted
//   cirrus_bench --suite paper --check      # rerun the paper, gate on refs
//   cirrus_bench --suite gap --check        # cross-generation gap trend
//   cirrus_bench --targets fig1,fig4        # just these targets
//   cirrus_bench --suite paper,perf --check --manifest out.json
//                                           # CI: checks + JSON artifact,
//                                           # folding perf_simulator's
//                                           # BENCH_simulator.json in
//   cirrus_bench --suite paper --write-ref  # regenerate reference tables
//
// Flags: --suite paper|ext|gap|perf|all (comma-separated, default paper),
// --targets a,b,c (overrides --suite target selection), --check, --ref FILE,
// --manifest [FILE], --write-ref [FILE], --perf-json FILE, --jobs N,
// --seed N (both forwarded to every target), --verbose (all check rows, not
// just failures).
//
// Exit status: 0 on success; 1 when any target fails or any reference check
// is out of tolerance; 2 on usage errors.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "mpi/minimpi.hpp"
#include "obs/telemetry.hpp"
#include "sim/event_queue.hpp"
#include "valid/compare.hpp"
#include "valid/manifest.hpp"
#include "valid/paths.hpp"

namespace {

using namespace cirrus;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string piece = s.substr(start, comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int usage(int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: cirrus_bench [--list] [--list-targets]\n"
               "                    [--suite paper|ext|gap|perf|all[,...]]\n"
               "                    [--targets a,b,c] [--check] [--ref FILE]\n"
               "                    [--manifest [FILE]] [--write-ref [FILE]]\n"
               "                    [--perf-json FILE] [--jobs N] [--seed N]\n"
               "                    [--lp N] [--sched heap4|calendar] [--verbose]\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) try {
  const core::Options opts(argc, argv);
  if (opts.has("help")) return usage(0);
  if (const auto bad = core::unknown_keys(
          opts, {"help", "list", "list-targets", "suite", "targets", "check", "ref",
                 "manifest", "write-ref", "perf-json", "jobs", "seed", "lp", "sched",
                 "verbose"});
      !bad.empty()) {
    std::fprintf(stderr, "cirrus_bench: unknown option --%s\n", bad.front().c_str());
    return usage(2);
  }

  // Engine knobs, applied process-wide: every target's JobConfig leaves
  // lp/scheduler at their defaults, so setting the defaults here reaches all
  // of them. Results are byte-identical for any --lp (that is what --check
  // verifies); --sched is a pure performance knob.
  if (const int lp = opts.get_int("lp", 0); lp > 0) mpi::set_default_lp(lp);
  if (const auto sched = opts.get("sched"); sched) {
    sim::set_default_scheduler(sim::scheduler_from_string(*sched));
  }

  if (opts.has("list")) {
    core::Table t({"target", "suite", "description"});
    for (const auto& tgt : bench::all_targets()) {
      t.row().add(tgt.name).add(tgt.suite).add(tgt.description);
    }
    std::printf("%s", t.str().c_str());
    return 0;
  }

  if (opts.has("list-targets")) {
    // Machine-friendly variant: sorted by name (not canonical paper order)
    // so the output is diffable, with suite membership and the platform
    // generations each target covers.
    std::vector<const bench::Target*> sorted;
    for (const auto& tgt : bench::all_targets()) sorted.push_back(&tgt);
    std::sort(sorted.begin(), sorted.end(), [](const bench::Target* a, const bench::Target* b) {
      return std::string_view(a->name) < std::string_view(b->name);
    });
    core::Table t({"target", "suite", "generations", "blame", "description"});
    for (const auto* tgt : sorted) {
      t.row()
          .add(tgt->name)
          .add(tgt->suite)
          .add(tgt->generations)
          .add(tgt->emits_blame ? "yes" : "no")
          .add(tgt->description);
    }
    std::printf("%s", t.str().c_str());
    return 0;
  }

  // --- select what to run -------------------------------------------------
  const std::vector<std::string> suites = split_csv(opts.get_or("suite", "paper"));
  bool want_perf = false;
  bool want_all = false;
  std::vector<std::string> registry_suites;
  for (const auto& s : suites) {
    if (s == "perf") {
      want_perf = true;
    } else if (s == "all") {
      want_all = want_perf = true;
    } else if (s == "paper" || s == "ext" || s == "gap") {
      registry_suites.push_back(s);
    } else {
      std::fprintf(stderr, "cirrus_bench: unknown suite '%s'\n", s.c_str());
      return usage(2);
    }
  }

  std::vector<const bench::Target*> selected;
  if (const auto names = opts.get("targets")) {
    for (const auto& name : split_csv(*names)) {
      const auto* tgt = bench::find_target(name);
      if (tgt == nullptr) {
        std::fprintf(stderr, "cirrus_bench: unknown target '%s' (see --list)\n", name.c_str());
        return 2;
      }
      selected.push_back(tgt);
    }
  } else {
    for (const auto& tgt : bench::all_targets()) {
      if (want_all ||
          std::find(registry_suites.begin(), registry_suites.end(), tgt.suite) !=
              registry_suites.end()) {
        selected.push_back(&tgt);
      }
    }
  }
  if (selected.empty() && !want_perf) {
    std::fprintf(stderr, "cirrus_bench: nothing selected\n");
    return usage(2);
  }

  // --- run ----------------------------------------------------------------
  // Targets parse the same `--key value` grammar; forward the shared knobs.
  const int jobs = opts.get_int("jobs", 0);
  const int seed = opts.get_int("seed", 1);
  const std::string jobs_s = std::to_string(jobs), seed_s = std::to_string(seed);
  const char* fwd_argv[] = {"cirrus_bench", "--jobs", jobs_s.c_str(), "--seed", seed_s.c_str()};
  const core::Options fwd(static_cast<int>(std::size(fwd_argv)), fwd_argv);

  std::vector<valid::RunReport> reports;
  int worst_rc = 0;
  for (const auto* tgt : selected) {
    std::printf("%s=== cirrus_bench: %s — %s\n", reports.empty() ? "" : "\n", tgt->name,
                tgt->description);
    std::fflush(stdout);
    valid::RunReport report;
    report.target = tgt->name;
    report.title = tgt->description;
    // Snapshot the process-wide telemetry counters around the target so the
    // manifest can attribute the deltas (top-N, deterministic) to it.
    const auto counters_before = obs::GlobalCounters::instance().snapshot();
    const auto start = std::chrono::steady_clock::now();
    int rc = 0;
    try {
      rc = tgt->fn(fwd, report);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "cirrus_bench: target %s threw: %s\n", tgt->name, e.what());
      rc = 1;
    }
    report.host_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    report.telemetry = obs::GlobalCounters::diff_top(
        counters_before, obs::GlobalCounters::instance().snapshot(), /*top_n=*/12);
    if (rc != 0) {
      std::fprintf(stderr, "cirrus_bench: target %s exited with %d\n", tgt->name, rc);
      worst_rc = std::max(worst_rc, rc);
    }
    reports.push_back(std::move(report));
  }

  // --- perf suite: fold in perf_simulator's google-benchmark JSON ---------
  std::string perf_json;
  if (want_perf) {
    const std::string path = opts.get_or("perf-json", "BENCH_simulator.json");
    perf_json = valid::read_text_file(path);  // throws with a clear message
    std::printf("\n=== cirrus_bench: perf — embedded %zu bytes of %s\n", perf_json.size(),
                path.c_str());
  }

  // --- summary ------------------------------------------------------------
  if (!reports.empty()) {
    core::Table t({"target", "metrics", "events", "host (ms)"});
    double total_ms = 0;
    std::uint64_t total_events = 0;
    for (const auto& r : reports) {
      t.row().add(r.target).add(static_cast<int>(r.metrics.size()))
          .add(static_cast<double>(r.events), 0).add(r.host_ms, 0);
      total_ms += r.host_ms;
      total_events += r.events;
    }
    std::printf("\n=== cirrus_bench: %zu target(s), %.0f ms host, %.3g simulated events\n%s",
                reports.size(), total_ms, static_cast<double>(total_events), t.str().c_str());
  }

  // --- reference handling -------------------------------------------------
  if (opts.has("write-ref")) {
    std::string path = opts.get_or("write-ref", "");
    if (path.empty()) path = valid::reference_dir() + "/paper.ref";
    valid::write_text_file(path, valid::write_reference(reports));
    std::size_t pinned = 0;
    for (const auto& r : reports) pinned += r.metrics.size();
    std::printf("\nwrote %zu reference metrics to %s\n", pinned, path.c_str());
    // Blame blocks get their own reference file (pins only; the hand-curated
    // qualitative expects live in the committed critpath.ref and are merged
    // back by hand after regeneration).
    std::size_t blamed = 0;
    for (const auto& r : reports) blamed += r.critpath.size();
    if (blamed > 0) {
      const std::string cp_path = valid::reference_dir() + "/critpath.ref.new";
      valid::write_text_file(cp_path, valid::write_critpath_reference(reports));
      std::printf("wrote %zu critpath pins to %s (merge into critpath.ref)\n", blamed,
                  cp_path.c_str());
    }
  }

  std::vector<valid::CheckResult> checks;
  if (opts.has("check")) {
    const auto ref_path = opts.get("ref");
    const valid::ReferenceSet ref = ref_path && !ref_path->empty()
                                        ? valid::ReferenceSet::load(*ref_path)
                                        : valid::ReferenceSet::load_default();
    checks = valid::check(reports, ref);
    const int failed = valid::failures(checks);
    std::printf("\n=== cirrus_bench: reference check — %zu entries, %d failed\n%s",
                checks.size(), failed, valid::render_checks(checks, !opts.has("verbose")).c_str());
    if (failed > 0) worst_rc = std::max(worst_rc, 1);
  }

  // --- manifest -----------------------------------------------------------
  if (opts.has("manifest")) {
    std::string path = opts.get_or("manifest", "");
    if (path.empty()) path = "cirrus_manifest.json";
    valid::ManifestContext ctx;
    std::string suite_label;
    for (const auto& s : suites) suite_label += (suite_label.empty() ? "" : "+") + s;
    ctx.suite = suite_label;
    ctx.seed = static_cast<std::uint64_t>(seed);
    ctx.jobs = jobs;
    ctx.perf_json = perf_json;
    valid::write_text_file(path, valid::manifest_json(ctx, reports, checks));
    std::printf("\nwrote run manifest to %s\n", path.c_str());
  }

  return worst_rc;
} catch (const std::exception& e) {
  std::fprintf(stderr, "cirrus_bench: error: %s\n", e.what());
  return 1;
}
