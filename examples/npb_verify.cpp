// Runs every NPB kernel in *execute* mode (real math) across several rank
// counts and prints the verification table — the "make sure the ported
// benchmarks are actually correct" sweep. CG additionally checks the
// published NPB zeta constants.
//
//   ./build/examples/npb_verify [class=S]
#include <cstdio>
#include <cstring>

#include "core/table.hpp"
#include "npb/npb.hpp"

int main(int argc, char** argv) {
  using namespace cirrus;
  const npb::Class cls = npb::class_from_char(argc > 1 ? argv[1][0] : 'S');

  core::Table t({"bench", "np", "verified", "verification value"});
  int failures = 0;
  for (const auto& b : npb::all_benchmarks()) {
    for (const int np : {1, 4}) {
      // BT/SP need square np; everything else powers of two — 1 and 4 fit all.
      const auto r = npb::run_benchmark(b.name, cls, plat::vayu(), np, /*execute=*/true);
      const bool ok = r.values.at("verified") == 1.0;
      failures += ok ? 0 : 1;
      t.row()
          .add(b.name + "." + std::string(1, npb::to_char(cls)))
          .add(np)
          .add(ok ? "OK" : "FAILED")
          .add(r.values.at("verification_value"), 6);
    }
  }
  std::printf("NPB execute-mode verification sweep (class %c)\n%s", npb::to_char(cls),
              t.str().c_str());
  if (failures == 0) {
    std::puts("\nall kernels VERIFIED (CG against the published NPB constants; the others "
              "against physical invariants and rank-count invariance)");
  } else {
    std::printf("\n%d verification FAILURES\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
