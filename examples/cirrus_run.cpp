// cirrus_run — the general experiment driver: run any workload on any
// platform configuration from the command line.
//
//   cirrus_run npb    --bench CG --class B --platform vayu --np 32 [--execute]
//   cirrus_run osu    --test bw|lat --platform dcc
//   cirrus_run metum  --platform ec2 --np 32 --rpn 8
//   cirrus_run chaste --platform dcc --np 16
//
// Common options: --platform vayu|dcc|ec2  --np N  --rpn ranks-per-node
//                 --seed S  --execute  --eager BYTES  --ipm (full summary)
//                 --trace FILE (write a chrome://tracing JSON span trace;
//                 with --metrics the trace gains counter tracks, fault
//                 instants and send->recv flow arrows)
// Telemetry:      --metrics [FILE] (Prometheus-style text dump of the
//                 simulator's self-profiling counters; stdout when no FILE)
//                 --sample-dt SECONDS (virtual-time sampling cadence for
//                 gauge time series)  --metrics-csv FILE (write the sampled
//                 series as CSV; requires --sample-dt)
// Topology:       --topo crossbar|fattree|vswitch|pgroups (fabric between the
//                 NICs; crossbar = legacy NIC-only model)  --oversub K
//                 (fat-tree uplink oversubscription)  --leaf N (nodes per
//                 leaf/group)  --placement contig|scatter|pgroup
//                 With --ipm, per-link utilisation counters are printed.
// Faults:         --mtbf SECONDS (per-node crash MTBF; job restarts from the
//                 last checkpoint)  --ckpt SECONDS (checkpoint interval)
//                 --requeue SECONDS (restart delay after a crash)
//                 With --trace, the merged multi-attempt timeline — including
//                 each killed attempt's partial spans — goes to one file.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "apps/chaste/chaste.hpp"
#include "apps/metum/metum.hpp"
#include "core/options.hpp"
#include "core/table.hpp"
#include "fault/fault.hpp"
#include "mpi/minimpi.hpp"
#include "sim/event_queue.hpp"
#include "obs/trace_export.hpp"
#include "npb/npb.hpp"
#include "osu/osu.hpp"

namespace {

using namespace cirrus;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s npb|osu|metum|chaste [--platform vayu|dcc|ec2] [--np N]\n"
               "  npb:    --bench BT|EP|CG|FT|IS|LU|MG|SP --class T|S|W|A|B|C [--execute]\n"
               "  osu:    --test bw|lat\n"
               "  common: --rpn ranks-per-node --seed S --eager bytes --ipm\n"
               "          --lp N (parallel engine LPs; default $CIRRUS_LP or 1)\n"
               "          --sched heap4|calendar (event scheduler; default $CIRRUS_SCHED)\n"
               "  topo:   --topo crossbar|fattree|vswitch|pgroups --oversub K --leaf N\n"
               "          --placement contig|scatter|pgroup\n"
               "  faults: --mtbf seconds --ckpt seconds --requeue seconds\n"
               "  obs:    --metrics [file] --sample-dt seconds --metrics-csv file\n"
               "          --trace file\n",
               prog);
  return 2;
}

mpi::JobConfig base_config(const core::Options& opts) {
  mpi::JobConfig cfg;
  cfg.platform = plat::by_name(opts.get_or("platform", "vayu"));
  cfg.np = opts.get_int("np", 8);
  cfg.max_ranks_per_node = opts.get_int("rpn", -1);
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  cfg.execute = opts.has("execute");
  cfg.eager_threshold_bytes =
      static_cast<std::size_t>(opts.get_int("eager", 16 * 1024));
  cfg.enable_trace = opts.has("trace");
  cfg.topology.kind = topo::kind_from_string(opts.get_or("topo", "crossbar"));
  cfg.topology.oversubscription = opts.get_double("oversub", 1.0);
  cfg.topology.leaf_radix = opts.get_int("leaf", 4);
  cfg.placement = topo::placement_from_string(opts.get_or("placement", "contig"));
  cfg.telemetry.sample_dt_s = opts.get_double("sample-dt", 0.0);
  cfg.telemetry.enabled = opts.has("metrics") || opts.has("metrics-csv") ||
                          cfg.telemetry.sample_dt_s > 0;
  cfg.lp = opts.get_int("lp", 0);  // 0: use $CIRRUS_LP (or 1)
  if (cfg.telemetry.enabled && (cfg.lp > 1 || mpi::default_lp() > 1)) {
    std::fputs("note: telemetry enabled; running single-LP (--lp ignored)\n", stderr);
  }
  if (const auto sched = opts.get("sched"); sched) {
    sim::set_default_scheduler(sim::scheduler_from_string(*sched));
  }
  cfg.scheduler = sim::default_scheduler();
  return cfg;
}

/// The per-link utilisation table printed with --ipm on a non-trivial fabric.
void print_link_table(const mpi::JobResult& r) {
  if (!r.topology || r.link_stats.empty()) return;
  std::printf("fabric: %s\n", r.topology->describe().c_str());
  core::Table t({"link", "transfers", "MB", "busy (s)", "queued (s)"});
  const auto& links = r.topology->links();
  for (std::size_t i = 0; i < r.link_stats.size(); ++i) {
    const auto& s = r.link_stats[i];
    t.row()
        .add(links[i].name)
        .add(static_cast<int>(s.transfers))
        .add(static_cast<double>(s.bytes) / 1e6, 1)
        .add(cirrus::sim::to_seconds(s.busy), 3)
        .add(cirrus::sim::to_seconds(s.queued), 3);
  }
  std::fputs(t.str().c_str(), stdout);
}

/// Runs the job, under injected node crashes with checkpoint/restart when
/// --mtbf or --ckpt is given; plain run_job otherwise.
mpi::JobResult run_maybe_resilient(mpi::JobConfig cfg,
                                   const std::function<void(mpi::RankEnv&)>& body,
                                   const core::Options& opts) {
  const double mtbf = opts.get_double("mtbf", 0.0);
  const double ckpt = opts.get_double("ckpt", 0.0);
  if (mtbf <= 0 && ckpt <= 0) return mpi::run_job(cfg, body);

  cfg.checkpoint_interval_s = ckpt;
  const auto placement =
      plat::place_block(cfg.platform, cfg.np, cfg.max_ranks_per_node, cfg.traits, cfg.seed);
  int nodes = 1;
  for (const auto& p : placement) nodes = std::max(nodes, p.node + 1);

  fault::FaultModel model;
  model.crash_mtbf_s = mtbf;
  const auto schedule = fault::FaultSchedule::generate(
      model, nodes, opts.get_double("horizon", 30.0 * 86400), cfg.seed + 0x5EED);
  fault::ResilientOptions ropts;
  ropts.requeue_delay_s = opts.get_double("requeue", 60.0);
  const auto run = fault::run_resilient(cfg, body, schedule, ropts);
  std::printf(
      "faults: %d attempt(s), %d crash(es), %.1f s lost work, %.1f s restart delay, "
      "%d checkpoint(s); makespan %.3f s\n",
      run.attempts, run.faults_hit, run.lost_work_s, run.restart_delay_s,
      run.checkpoints_taken, run.makespan_s);
  return run.result;
}

void print_result(const mpi::JobResult& r, const std::string& name,
                  const core::Options& opts) {
  std::printf("%s: %.3f s virtual walltime, %.1f%% comm, %.1f%% imbalance\n", name.c_str(),
              r.elapsed_seconds, r.ipm.comm_pct(), r.ipm.imbalance_pct());
  for (const auto& [k, v] : r.values) std::printf("  %s = %g\n", k.c_str(), v);
  if (opts.has("ipm")) {
    std::fputs(r.ipm.text_summary(name).c_str(), stdout);
    std::fputs(r.ipm.call_table_str().c_str(), stdout);
    print_link_table(r);
  }
  if (const auto path = opts.get("trace"); path && r.trace) {
    std::ofstream out(*path);
    if (r.telemetry) {
      // Enriched trace: counter tracks from the sampler ride along with the
      // spans, flow arrows and instant markers.
      out << obs::enriched_chrome_json(r.trace.get(), &r.telemetry->sampler);
    } else {
      out << r.trace->to_chrome_json();
    }
    std::printf("wrote %zu trace events to %s (open in chrome://tracing)\n",
                r.trace->size(), path->c_str());
  }
  if (r.telemetry) {
    if (opts.has("metrics")) {
      const std::string text = r.telemetry->prometheus_text();
      if (const auto path = opts.get("metrics"); path && !path->empty()) {
        std::ofstream out(*path);
        out << text;
        std::printf("wrote %zu metric series to %s\n", r.telemetry->registry.size(),
                    path->c_str());
      } else {
        std::fputs(text.c_str(), stdout);
      }
    }
    if (const auto path = opts.get("metrics-csv"); path) {
      const std::string csv = r.telemetry->samples_csv();
      if (csv.empty()) {
        std::fputs("--metrics-csv: no samples (use --sample-dt to enable sampling)\n",
                   stderr);
      } else {
        std::ofstream out(*path);
        out << csv;
        std::printf("wrote sampled time series to %s\n", path->c_str());
      }
    }
  }
}

int run_npb(const core::Options& opts) {
  const std::string bench = opts.get_or("bench", "CG");
  const auto cls = npb::class_from_char(opts.get_or("class", "S")[0]);
  auto cfg = base_config(opts);
  const auto& info = npb::benchmark(bench);
  auto job = npb::make_job(info, cls, cfg.platform, cfg.np, cfg.execute, cfg.seed);
  job.max_ranks_per_node = cfg.max_ranks_per_node;
  job.eager_threshold_bytes = cfg.eager_threshold_bytes;
  job.enable_trace = cfg.enable_trace;
  job.topology = cfg.topology;
  job.placement = cfg.placement;
  job.telemetry = cfg.telemetry;
  job.lp = cfg.lp;
  job.scheduler = cfg.scheduler;
  const auto r = run_maybe_resilient(
      job,
      [&info, cls](mpi::RankEnv& env) {
        const auto res = info.fn(env, cls);
        if (env.rank() == 0) {
          env.report("verified", res.verified ? 1.0 : 0.0);
          env.report("verification_value", res.verification_value);
        }
      },
      opts);
  print_result(r, info.name + "." + std::string(1, npb::to_char(cls)) + "." +
                      std::to_string(cfg.np) + " on " + cfg.platform.name,
               opts);
  if (cfg.execute && r.values.count("verified") != 0U && r.values.at("verified") != 1.0) {
    std::fputs("VERIFICATION FAILED\n", stderr);
    return 1;
  }
  return 0;
}

int run_osu(const core::Options& opts) {
  const auto platform = plat::by_name(opts.get_or("platform", "vayu"));
  const std::string test = opts.get_or("test", "bw");
  core::Table t(test == "bw" ? std::vector<std::string>{"bytes", "MB/s"}
                             : std::vector<std::string>{"bytes", "usec"});
  if (test == "bw") {
    for (const auto& p : osu::bandwidth(platform, osu::default_sizes())) {
      t.row().add(static_cast<int>(p.bytes)).add(p.mb_per_s, 2);
    }
  } else {
    for (const auto& p : osu::latency(platform, osu::default_sizes())) {
      t.row().add(static_cast<int>(p.bytes)).add(p.usec, 2);
    }
  }
  std::printf("osu_%s on %s\n%s", test.c_str(), platform.name.c_str(), t.str().c_str());
  return 0;
}

int run_metum(const core::Options& opts) {
  auto cfg = base_config(opts);
  cfg.traits = metum::traits();
  cfg.name = "metum";
  const auto r = run_maybe_resilient(cfg, [](mpi::RankEnv& env) { metum::run(env); }, opts);
  print_result(r, "MetUM N320L70 on " + cfg.platform.name, opts);
  return 0;
}

int run_chaste(const core::Options& opts) {
  auto cfg = base_config(opts);
  cfg.traits = chaste::traits();
  cfg.name = "chaste";
  const auto r = run_maybe_resilient(cfg, [](mpi::RankEnv& env) { chaste::run(env); }, opts);
  print_result(r, "Chaste rabbit heart on " + cfg.platform.name, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::Options opts(argc, argv);
  if (opts.positional().empty()) return usage(argv[0]);
  const std::string& mode = opts.positional()[0];
  try {
    if (mode == "npb") return run_npb(opts);
    if (mode == "osu") return run_osu(opts);
    if (mode == "metum") return run_metum(opts);
    if (mode == "chaste") return run_chaste(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
