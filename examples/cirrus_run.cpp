// cirrus_run — the general experiment driver: run any workload on any
// platform configuration from the command line.
//
//   cirrus_run npb    --bench CG --class B --platform vayu --np 32 [--execute]
//   cirrus_run npb    --bench CG --class B --platform vayu --gen 2020 --np 32
//   cirrus_run osu    --test bw|lat --platform dcc
//   cirrus_run metum  --platform ec2 --np 32 --rpn 8
//   cirrus_run chaste --platform dcc --np 16
//   cirrus_run wf     --wf-shape montage --storage object --np 8 --platform ec2
//
// Common options: --platform vayu|dcc|ec2|vayu2020|ec2_2020  --gen 2012|2020
//                 (generation qualifier: "--platform vayu --gen 2020" runs on
//                 the gen-2020 model of that machine)  --np N  --rpn ranks-per-node
//                 --seed S  --execute  --eager BYTES  --ipm (full summary)
//                 --trace FILE (write a chrome://tracing JSON span trace;
//                 with --metrics the trace gains counter tracks, fault
//                 instants and send->recv flow arrows)
//                 --blame (critical-path blame attribution: walk the span/
//                 event DAG backwards from completion and print the makespan
//                 split into compute / mpi-wait / fabric-serialization /
//                 storage-queue / barrier-lookahead, plus the top edges)
// Telemetry:      --metrics [FILE] (Prometheus-style text dump of the
//                 simulator's self-profiling counters; stdout when no FILE)
//                 --sample-dt SECONDS (virtual-time sampling cadence for
//                 gauge time series)  --metrics-csv FILE (write the sampled
//                 series as CSV; requires --sample-dt)
// Topology:       --topo crossbar|fattree|vswitch|pgroups (fabric between the
//                 NICs; crossbar = legacy NIC-only model)  --oversub K
//                 (fat-tree uplink oversubscription)  --leaf N (nodes per
//                 leaf/group)  --placement contig|scatter|pgroup
//                 With --ipm, per-link utilisation counters are printed.
// Faults:         --mtbf SECONDS (per-node crash MTBF; job restarts from the
//                 last checkpoint)  --ckpt SECONDS (checkpoint interval)
//                 --requeue SECONDS (restart delay after a crash)
//                 With --trace, the merged multi-attempt timeline — including
//                 each killed attempt's partial spans — goes to one file.
//
// The configuration is carried by core::RunRequest and executed through
// serve::execute() — the exact plumbing cirrus_serve uses to answer /query
// requests — so a CLI run and a served query of the same knobs are
// byte-identical. This driver only parses flags and prints.
#include <cstdio>
#include <fstream>
#include <string>

#include "core/options.hpp"
#include "core/request.hpp"
#include "core/table.hpp"
#include "mpi/minimpi.hpp"
#include "obs/critpath.hpp"
#include "obs/trace_export.hpp"
#include "osu/osu.hpp"
#include "serve/service.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace cirrus;

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s npb|osu|metum|chaste|wf [--platform vayu|dcc|ec2|vayu2020|ec2_2020]\n"
               "        [--gen 2012|2020] [--np N]\n"
               "  npb:    --bench BT|EP|CG|FT|IS|LU|MG|SP --class T|S|W|A|B|C [--execute]\n"
               "  osu:    --test bw|lat\n"
               "  wf:     --wf-shape diamond|montage|epigenomics|broadband --wf-width W\n"
               "          --wf-sched heft|fifo (np = workers; a master rank is added)\n"
               "  common: --rpn ranks-per-node --seed S --eager bytes --ipm\n"
               "          --storage nfs|lustre|object (shared-storage backend)\n"
               "          --lp N (parallel engine LPs; default $CIRRUS_LP or 1)\n"
               "          --sched heap4|calendar (event scheduler; default $CIRRUS_SCHED)\n"
               "  topo:   --topo crossbar|fattree|vswitch|pgroups --oversub K --leaf N\n"
               "          --placement contig|scatter|pgroup\n"
               "  faults: --mtbf seconds --ckpt seconds --requeue seconds --horizon seconds\n"
               "  obs:    --metrics [file] --sample-dt seconds --metrics-csv file\n"
               "          --trace file --blame (critical-path blame table)\n",
               prog);
  return 2;
}

/// Front-end toggles (everything outside the RunRequest / cache key).
serve::ExecOptions exec_options(const core::Options& opts) {
  serve::ExecOptions exec;
  exec.enable_trace = opts.has("trace") || opts.has("blame");
  exec.telemetry.sample_dt_s = opts.get_double("sample-dt", 0.0);
  exec.telemetry.enabled = opts.has("metrics") || opts.has("metrics-csv") ||
                           exec.telemetry.sample_dt_s > 0;
  exec.lp = opts.get_int("lp", 0);  // 0: use $CIRRUS_LP (or 1)
  if (exec.telemetry.enabled && (exec.lp > 1 || mpi::default_lp() > 1)) {
    std::fputs("note: telemetry enabled; running single-LP (--lp ignored)\n", stderr);
  }
  return exec;
}

/// The per-link utilisation table printed with --ipm on a non-trivial fabric.
void print_link_table(const mpi::JobResult& r) {
  if (!r.topology || r.link_stats.empty()) return;
  std::printf("fabric: %s\n", r.topology->describe().c_str());
  core::Table t({"link", "transfers", "MB", "busy (s)", "queued (s)"});
  const auto& links = r.topology->links();
  for (std::size_t i = 0; i < r.link_stats.size(); ++i) {
    const auto& s = r.link_stats[i];
    t.row()
        .add(links[i].name)
        .add(static_cast<int>(s.transfers))
        .add(static_cast<double>(s.bytes) / 1e6, 1)
        .add(cirrus::sim::to_seconds(s.busy), 3)
        .add(cirrus::sim::to_seconds(s.queued), 3);
  }
  std::fputs(t.str().c_str(), stdout);
}

void print_result(const mpi::JobResult& r, const std::string& name,
                  const core::Options& opts) {
  std::printf("%s: %.3f s virtual walltime, %.1f%% comm, %.1f%% imbalance\n", name.c_str(),
              r.elapsed_seconds, r.ipm.comm_pct(), r.ipm.imbalance_pct());
  for (const auto& [k, v] : r.values) std::printf("  %s = %g\n", k.c_str(), v);
  if (opts.has("ipm")) {
    std::fputs(r.ipm.text_summary(name).c_str(), stdout);
    std::fputs(r.ipm.call_table_str().c_str(), stdout);
    print_link_table(r);
  }
  if (const auto path = opts.get("trace"); path && r.trace) {
    std::ofstream out(*path);
    if (r.telemetry || r.spans || r.sched_spans) {
      // Enriched trace: causal spans (rank tracks + the scheduler meta
      // track) and, with --metrics, counter tracks ride along with the
      // event rows, flow arrows and instant markers.
      out << obs::enriched_chrome_json(r.trace.get(),
                                       r.telemetry ? &r.telemetry->sampler : nullptr,
                                       r.spans.get(), r.sched_spans.get());
    } else {
      out << r.trace->to_chrome_json();
    }
    std::printf("wrote %zu trace events to %s (open in chrome://tracing)\n",
                r.trace->size(), path->c_str());
  }
  if (opts.has("blame") && r.trace) {
    const auto blame = obs::critpath::attribute(*r.trace, r.spans.get());
    std::fputs(blame.format().c_str(), stdout);
  }
  if (r.telemetry) {
    if (opts.has("metrics")) {
      const std::string text = r.telemetry->prometheus_text();
      if (const auto path = opts.get("metrics"); path && !path->empty()) {
        std::ofstream out(*path);
        out << text;
        std::printf("wrote %zu metric series to %s\n", r.telemetry->registry.size(),
                    path->c_str());
      } else {
        std::fputs(text.c_str(), stdout);
      }
    }
    if (const auto path = opts.get("metrics-csv"); path) {
      const std::string csv = r.telemetry->samples_csv();
      if (csv.empty()) {
        std::fputs("--metrics-csv: no samples (use --sample-dt to enable sampling)\n",
                   stderr);
      } else {
        std::ofstream out(*path);
        out << csv;
        std::printf("wrote sampled time series to %s\n", path->c_str());
      }
    }
  }
}

int run_job_mode(const std::string& mode, const core::Options& opts) {
  auto req = core::RunRequest::from_options(opts);
  req.workload = mode;
  if (!opts.has("sched")) {
    // Preserve the $CIRRUS_SCHED environment default for CLI runs.
    req.sched = sim::to_string(sim::default_scheduler());
  }
  std::string error;
  if (!req.validate(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const auto out = serve::execute(req, exec_options(opts));
  if (out.resilient_used) {
    const auto& run = out.resilient;
    std::printf(
        "faults: %d attempt(s), %d crash(es), %.1f s lost work, %.1f s restart delay, "
        "%d checkpoint(s); makespan %.3f s\n",
        run.attempts, run.faults_hit, run.lost_work_s, run.restart_delay_s,
        run.checkpoints_taken, run.makespan_s);
  }
  print_result(out.result, out.display_name, opts);
  const auto& r = out.result;
  if (req.execute && r.values.count("verified") != 0U && r.values.at("verified") != 1.0) {
    std::fputs("VERIFICATION FAILED\n", stderr);
    return 1;
  }
  return 0;
}

int run_osu(const core::Options& opts) {
  // Route through RunRequest so --gen folding and validation match /query.
  auto req = core::RunRequest::from_options(opts);
  req.workload = "osu";
  const auto platform = plat::by_name(req.resolved_platform());
  const std::string test = opts.get_or("test", "bw");
  if (test != "bw" && test != "lat") {
    std::fprintf(stderr, "error: --test bw|lat expected, got '%s'\n", test.c_str());
    return 2;
  }
  core::Table t(test == "bw" ? std::vector<std::string>{"bytes", "MB/s"}
                             : std::vector<std::string>{"bytes", "usec"});
  if (test == "bw") {
    for (const auto& p : osu::bandwidth(platform, osu::default_sizes())) {
      t.row().add(static_cast<int>(p.bytes)).add(p.mb_per_s, 2);
    }
  } else {
    for (const auto& p : osu::latency(platform, osu::default_sizes())) {
      t.row().add(static_cast<int>(p.bytes)).add(p.usec, 2);
    }
  }
  std::printf("osu_%s on %s\n%s", test.c_str(), platform.name.c_str(), t.str().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const core::Options opts(argc, argv);
  if (const auto bad = core::unknown_keys(
          opts, {"platform", "gen",       "np",      "rpn",     "seed",    "execute",
                 "eager",    "ipm",       "trace",   "blame",   "metrics", "sample-dt", "metrics-csv",
                 "topo",     "oversub",   "leaf",    "placement", "mtbf",
                 "ckpt",     "requeue",   "horizon", "lp",        "sched",
                 "bench",    "class",     "test",    "storage",   "wf-shape",
                 "wf-width", "wf-sched"});
      !bad.empty()) {
    std::fprintf(stderr, "error: unknown option --%s\n", bad.front().c_str());
    return usage(argv[0]);
  }
  if (opts.positional().empty()) return usage(argv[0]);
  const std::string& mode = opts.positional()[0];
  try {
    if (mode == "osu") return run_osu(opts);
    if (mode == "npb" || mode == "metum" || mode == "chaste" || mode == "wf") {
      return run_job_mode(mode, opts);
    }
  } catch (const std::invalid_argument& e) {
    // Bad knob values (unknown platform, gen conflict, ...) are usage errors:
    // rc 2 like the unknown-flag path, not a generic failure.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage(argv[0]);
}
