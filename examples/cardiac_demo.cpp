// Runs the Chaste cardiac proxy in *execute* mode: a real monodomain
// simulation (FitzHugh–Nagumo membrane kinetics, CG diffusion solves) on a
// small tissue block, simulated on the chosen platform.
//
//   ./build/examples/cardiac_demo [platform=vayu] [np=8]
#include <cstdio>
#include <cstdlib>

#include "apps/chaste/chaste.hpp"

int main(int argc, char** argv) {
  using namespace cirrus;
  const std::string platform_name = argc > 1 ? argv[1] : "vayu";
  const int np = argc > 2 ? std::atoi(argv[2]) : 8;

  mpi::JobConfig cfg;
  cfg.platform = plat::by_name(platform_name);
  cfg.np = np;
  cfg.traits = chaste::traits();
  cfg.execute = true;  // run the real electrophysiology
  cfg.name = "cardiac";

  chaste::Config model;
  model.exec_nx = model.exec_ny = model.exec_nz = 14;
  model.exec_timesteps = 40;

  std::printf("monodomain %dx%dx%d tissue block, %d steps, %d ranks on %s\n", model.exec_nx,
              model.exec_ny, model.exec_nz, model.exec_timesteps, np, platform_name.c_str());
  auto result = mpi::run_job(cfg, [&model](mpi::RankEnv& env) { chaste::run(env, model); });

  std::printf("simulated in %.4f s of virtual time; activated cells: %.0f; |V| = %.4f\n",
              result.elapsed_seconds, result.values.at("chaste_activated"),
              result.values.at("chaste_final_norm"));
  std::fputs(result.ipm.text_summary("chaste").c_str(), stdout);
  std::puts("the KSp (conjugate-gradient) section dominates, exactly as in the paper.");
  return 0;
}
