// The paper's end-to-end motivating workflow: profile a queued workload with
// IPM, classify its cloud suitability with the ARRIVE-F predictor, provision
// a StarCluster-style EC2 cluster, and compare predicted turnaround and cost
// against waiting for the local HPC queue.
//
//   ./build/examples/cloudburst_advisor [bench=CG] [np=16] [queue_wait_hours=4]
#include <cstdio>
#include <cstdlib>

#include "cloud/cloud.hpp"
#include "cloud/packaging.hpp"
#include "npb/npb.hpp"

int main(int argc, char** argv) {
  using namespace cirrus;
  const std::string bench = argc > 1 ? argv[1] : "CG";
  const int np = argc > 2 ? std::atoi(argv[2]) : 16;
  const double queue_wait_h = argc > 3 ? std::atof(argv[3]) : 4.0;

  // 1. Profile the workload on the local HPC system (class B, model mode).
  std::printf("profiling %s class B on vayu at %d ranks...\n", bench.c_str(), np);
  const auto profile = npb::run_benchmark(bench, npb::Class::B, plat::vayu(), np, false);
  const double local_runtime = profile.elapsed_seconds;
  std::printf("  local runtime %.0f s, %.0f%% communication\n", local_runtime,
              profile.ipm.comm_pct());

  // 2. Package the HPC environment into a VM image (paper §IV). The first
  //    attempt ships Vayu-tuned binaries and hits the paper's SSE4 barrier;
  //    the portable rebuild deploys cleanly.
  auto env = cloud::paper_environment();
  auto image = cloud::package_environment(env, plat::vayu());
  std::printf("packaged /apps into a %.0f MB image in %.0f s\n", image.size_mb,
              image.build_seconds);
  cloud::Deployment deployment;
  try {
    deployment = cloud::deploy_image(image, plat::ec2());
  } catch (const cloud::IncompatibleIsaError& e) {
    std::printf("deploy failed: %s\n", e.what());
    env = cloud::rebuild_portable(env);
    image = cloud::package_environment(env, plat::vayu());
    deployment = cloud::deploy_image(image, plat::ec2());
    std::puts("rebuilt with portable switches; image deploys cleanly");
  }
  std::printf("image transfer %.0f s + VM boot %.0f s\n", deployment.transfer_seconds,
              deployment.boot_seconds);

  // 3. Provision a StarCluster-style EC2 cluster big enough for the job.
  cloud::Provisioner prov(42);
  // One instance per 8 ranks: physical cores only, no HyperThread sharing
  // (the paper's EC2-4 lesson: never oversubscribe).
  const int instances = (np + 7) / 8;
  const auto cluster = prov.provision("cc1.4xlarge", instances, /*placement_group=*/true);
  std::printf("provisioned %d x cc1.4xlarge (ready in %.0f s, $%.2f/h)\n", instances,
              cluster.ready_after_s, cluster.hourly_usd);

  // 4. ARRIVE-F prediction of the runtime on the provisioned cluster.
  const auto traits = npb::benchmark(bench).traits;
  const auto pred = cloud::predict_runtime(profile.ipm, plat::vayu(), cluster.platform, np, -1,
                                           /*dst_max_rpn=*/8, traits);
  const double slowdown = pred.seconds / local_runtime;
  std::printf("predicted cloud runtime %.0f s (%.2fx local): comp %.0f s, comm %.0f s\n",
              pred.seconds, slowdown, pred.comp_seconds, pred.comm_seconds);

  // 5. Compare turnarounds and price the cloud run at spot.
  const double local_turnaround = queue_wait_h * 3600 + local_runtime;
  const double cloud_turnaround =
      deployment.ready_seconds + cluster.ready_after_s + pred.seconds;
  cloud::SpotMarket market({}, 7);
  const double spot_cost = market.cost(0, cloud_turnaround, instances);
  const double od_cost = cluster.hourly_usd * (cloud_turnaround / 3600.0);

  std::printf("\nlocal:  wait %.1f h + run %.0f s  => turnaround %.2f h ($0)\n", queue_wait_h,
              local_runtime, local_turnaround / 3600);
  std::printf("cloud:  deploy %.0f s + boot %.0f s + run %.0f s => turnaround %.2f h "
              "($%.2f on-demand, $%.2f spot)\n",
              deployment.ready_seconds, cluster.ready_after_s, pred.seconds,
              cloud_turnaround / 3600, od_cost, spot_cost);
  if (cloud_turnaround < local_turnaround && slowdown < 1.8) {
    std::puts("\nADVICE: burst this job to the cloud.");
  } else if (slowdown >= 1.8) {
    std::puts("\nADVICE: stay local — the job is too communication-bound for the cloud "
              "interconnect (the paper's key finding).");
  } else {
    std::puts("\nADVICE: stay local — the queue is short enough.");
  }
  return 0;
}
