// The paper's end-to-end motivating workflow: profile a queued workload with
// IPM, classify its cloud suitability with the ARRIVE-F predictor, provision
// a StarCluster-style EC2 cluster, and compare predicted turnaround and cost
// against waiting for the local HPC queue.
//
// The pipeline itself lives in serve::advise() (shared with cirrus_serve's
// /advise endpoint); this demo only formats the result.
//
//   ./build/examples/cloudburst_advisor [bench=CG] [np=16] [queue_wait_hours=4]
#include <cstdio>
#include <cstdlib>

#include "serve/advisor.hpp"

int main(int argc, char** argv) {
  using namespace cirrus;
  serve::AdvisorRequest req;
  req.bench = argc > 1 ? argv[1] : "CG";
  req.np = argc > 2 ? std::atoi(argv[2]) : 16;
  req.queue_wait_h = argc > 3 ? std::atof(argv[3]) : 4.0;

  serve::AdvisorResult a;
  try {
    a = serve::advise(req);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // 1. Local profile.
  std::printf("profiling %s class B on vayu at %d ranks...\n", req.bench.c_str(), req.np);
  std::printf("  local runtime %.0f s, %.0f%% communication\n", a.local_runtime_s,
              a.local_comm_pct);

  // 2. Environment packaging and deployment (paper §IV).
  std::printf("packaged /apps into a %.0f MB image in %.0f s\n", a.image_size_mb,
              a.image_build_s);
  if (a.isa_rebuild_needed) {
    std::printf("deploy failed: %s\n", a.isa_error.c_str());
    std::puts("rebuilt with portable switches; image deploys cleanly");
  }
  std::printf("image transfer %.0f s + VM boot %.0f s\n", a.transfer_s, a.boot_s);

  // 3. Provisioned cluster.
  std::printf("provisioned %d x cc1.4xlarge (ready in %.0f s, $%.2f/h)\n", a.instances,
              a.cluster_ready_s, a.hourly_usd);

  // 4. ARRIVE-F prediction.
  std::printf("predicted cloud runtime %.0f s (%.2fx local): comp %.0f s, comm %.0f s\n",
              a.predicted_s, a.slowdown, a.predicted_comp_s, a.predicted_comm_s);

  // 5. Turnaround and cost comparison.
  std::printf("\nlocal:  wait %.1f h + run %.0f s  => turnaround %.2f h ($0)\n",
              req.queue_wait_h, a.local_runtime_s, a.local_turnaround_s / 3600);
  std::printf("cloud:  deploy %.0f s + boot %.0f s + run %.0f s => turnaround %.2f h "
              "($%.2f on-demand, $%.2f spot)\n",
              a.transfer_s + a.boot_s, a.cluster_ready_s, a.predicted_s,
              a.cloud_turnaround_s / 3600, a.on_demand_cost_usd, a.spot_cost_usd);
  std::printf("\nADVICE: %s\n", a.advice_detail());
  return 0;
}
