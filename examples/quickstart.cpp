// Quickstart: simulate a small MPI program on each of the paper's platforms
// and read the IPM profile.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program below is ordinary blocking message-passing code; the simulator
// runs every rank on a fiber and prices all communication with the selected
// platform's network model.
#include <cstdio>
#include <vector>

#include "mpi/minimpi.hpp"
#include "platform/platform.hpp"

int main() {
  using namespace cirrus;

  for (const auto& platform : plat::study_platforms()) {
    mpi::JobConfig cfg;
    cfg.platform = platform;
    cfg.np = 16;
    cfg.name = "quickstart";
    cfg.traits.mem_intensity = 0.3;

    auto result = mpi::run_job(cfg, [](mpi::RankEnv& env) {
      auto& comm = env.world();
      // A toy iterative solver: compute, exchange halos with neighbours,
      // reduce a residual.
      std::vector<double> halo(1024, env.rank());
      double residual = 1.0;
      for (int iter = 0; iter < 50 && residual > 1e-6; ++iter) {
        ipm::Region step(env.ipm(), "solve");
        env.compute(0.01);  // 10 ms of reference work per iteration
        const int right = (comm.rank() + 1) % comm.size();
        const int left = (comm.rank() - 1 + comm.size()) % comm.size();
        comm.sendrecv(right, iter, halo.data(), halo.size(), left, iter, halo.data(),
                      halo.size());
        residual = comm.allreduce_one(residual * 0.7, mpi::Op::Max);
      }
      if (env.rank() == 0) env.report("residual", residual);
    });

    std::printf("=== %-5s (%s): %.3f s virtual, %.1f%% comm, residual %.2e\n",
                platform.name.c_str(), platform.interconnect.c_str(), result.elapsed_seconds,
                result.ipm.comm_pct(), result.values.at("residual"));
    std::fputs(result.ipm.text_summary("quickstart").c_str(), stdout);
  }
  std::puts("\nSame program, three machines: the interconnect decides.");
  return 0;
}
