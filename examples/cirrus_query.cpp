// cirrus_query — tiny client for a running cirrus_serve.
//
//   cirrus_query --port N [--host 127.0.0.1] [--path /query] [k=v ...]
//
// Positional `k=v` pairs become the query string; the response body is
// printed to stdout. Exit status: 0 for HTTP 2xx, 1 otherwise. The cache
// disposition (hit/miss) arrives in the X-Cirrus-Cache header and is echoed
// to stderr so stdout stays pure JSON:
//
//   cirrus_query --port 8080 workload=npb bench=CG class=A np=16
//   cirrus_query --port 8080 --path /advise bench=CG np=16 queue_wait_hours=4
//   cirrus_query --port 8080 --path /metrics
#include <cctype>
#include <cstdio>
#include <string>

#include "core/options.hpp"
#include "serve/client.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --port N [--host ipv4] [--path /query|/advise|/metrics|...]\n"
               "          [key=value ...]\n",
               prog);
  return 2;
}

/// Percent-encodes the characters that matter inside a query value.
std::string url_encode(const std::string& s) {
  std::string out;
  for (const unsigned char c : s) {
    const bool safe = (std::isalnum(c) != 0) || c == '-' || c == '_' || c == '.' ||
                      c == '~' || c == '=';
    if (safe) {
      out += static_cast<char>(c);
    } else {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%%%02X", c);
      out += buf;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cirrus;
  const core::Options opts(argc, argv);
  if (const auto bad = core::unknown_keys(opts, {"port", "host", "path", "help"});
      !bad.empty()) {
    std::fprintf(stderr, "error: unknown option --%s\n", bad.front().c_str());
    return usage(argv[0]);
  }
  if (opts.has("help") || !opts.has("port")) return usage(argv[0]);

  std::string target = opts.get_or("path", "/query");
  std::string qs;
  for (const auto& kv : opts.positional()) {
    qs += qs.empty() ? "" : "&";
    qs += url_encode(kv);
  }
  if (!qs.empty()) target += "?" + qs;

  serve::HttpClient client;
  std::string error;
  if (!client.connect(opts.get_int("port", 0), opts.get_or("host", "127.0.0.1"), &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  const auto resp = client.request("GET", target);
  if (!resp) {
    std::fprintf(stderr, "error: transport failure talking to the server\n");
    return 1;
  }
  if (const auto it = resp->headers.find("x-cirrus-cache"); it != resp->headers.end()) {
    std::fprintf(stderr, "cache: %s\n", it->second.c_str());
  }
  std::fwrite(resp->body.data(), 1, resp->body.size(), stdout);
  if (!resp->body.empty() && resp->body.back() != '\n') std::fputc('\n', stdout);
  return resp->status >= 200 && resp->status < 300 ? 0 : 1;
}
