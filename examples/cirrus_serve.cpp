// cirrus_serve — the long-running what-if advisor service.
//
//   cirrus_serve [--port N] [--cache-cap N] [--cache-dir DIR]
//                [--verify-frac F] [--max-inflight N] [--timeout-ms MS]
//
// Accepts what-if queries over HTTP (which platform, how many ranks, what
// topology, what fault rate?) and answers them by running the simulator.
// Results are served through a content-addressed cache: the simulator is
// deterministic, so repeats of a configuration are byte-identical cache
// hits. Routes:
//
//   GET  /healthz                        liveness
//   GET  /query?workload=npb&bench=CG&np=64&platform=ec2&...
//   POST /query   {"workload":"npb","bench":"CG","np":64,...}
//   GET|POST /advise?bench=CG&np=16&queue_wait_hours=4
//   GET  /metrics                        Prometheus text exposition
//   GET  /cache/stats                    cache counters as JSON
//   GET  /spans                          recent request traces (span chains)
//
// Every response carries an X-Cirrus-Trace id. With --access-log FILE each
// request appends one JSON line (trace id, route, status, cache outcome,
// latency); requests slower than --slow-ms log their span chain to stderr.
// With --port 0 (the default) an ephemeral port is chosen and printed; CI
// and the load generator parse the "listening on port N" line.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "core/options.hpp"
#include "serve/http.hpp"
#include "serve/service.hpp"

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--port N (0 = ephemeral)] [--cache-cap entries]\n"
               "          [--cache-dir dir (persist results)] [--verify-frac 0..1]\n"
               "          [--max-inflight jobs] [--timeout-ms queue-wait]\n"
               "          [--access-log file (JSON lines, one per request)]\n"
               "          [--slow-ms N (slow-request stderr log; 0 = off)]\n",
               prog);
  return 2;
}

std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace cirrus;
  const core::Options opts(argc, argv);
  if (const auto bad = core::unknown_keys(opts, {"port", "cache-cap", "cache-dir",
                                                 "verify-frac", "max-inflight",
                                                 "timeout-ms", "access-log",
                                                 "slow-ms", "help"});
      !bad.empty()) {
    std::fprintf(stderr, "error: unknown option --%s\n", bad.front().c_str());
    return usage(argv[0]);
  }
  if (opts.has("help") || !opts.positional().empty()) return usage(argv[0]);

  serve::Service::Options sopts;
  sopts.cache.capacity = static_cast<std::size_t>(opts.get_int("cache-cap", 1024));
  sopts.cache.spill_dir = opts.get_or("cache-dir", "");
  sopts.verify_fraction = opts.get_double("verify-frac", 0.0);
  sopts.max_inflight_jobs = opts.get_int("max-inflight", 0);
  sopts.queue_timeout_ms = opts.get_int("timeout-ms", 5000);
  sopts.access_log_path = opts.get_or("access-log", "");
  sopts.slow_ms = opts.get_int("slow-ms", 1000);
  if (sopts.cache.capacity < 1 || sopts.verify_fraction < 0 || sopts.verify_fraction > 1) {
    return usage(argv[0]);
  }

  std::unique_ptr<serve::Service> service_ptr;
  try {
    service_ptr = std::make_unique<serve::Service>(sopts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  serve::Service& service = *service_ptr;
  serve::HttpServer::Options hopts;
  hopts.port = opts.get_int("port", 0);
  serve::HttpServer server(hopts, [&service](const serve::HttpRequest& req) {
    return service.handle(req);
  });
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("cirrus_serve listening on port %d\n", server.port());
  std::printf("  cache: %zu entries%s%s, verify %.0f%% of hits\n", sopts.cache.capacity,
              sopts.cache.spill_dir.empty() ? "" : ", spill to ",
              sopts.cache.spill_dir.c_str(), sopts.verify_fraction * 100);
  std::printf("  compute slots: %d, queue timeout %d ms\n", service.gate().capacity(),
              sopts.queue_timeout_ms);
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  sigset_t set;
  sigemptyset(&set);
  while (g_stop == 0) sigsuspend(&set);  // park until SIGINT/SIGTERM

  std::puts("shutting down");
  server.stop();
  const auto s = service.cache().stats();
  std::printf("cache: %llu hit(s), %llu miss(es), %llu eviction(s)\n",
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.evictions));
  return 0;
}
